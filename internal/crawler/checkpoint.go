package crawler

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// checkpointVersion is bumped when the on-disk format changes.
const checkpointVersion = 1

// checkpointHeader is the first line of a checkpoint file. The seed is
// validated on resume: a checkpoint only makes sense against the exact
// deterministic world it was recorded in.
type checkpointHeader struct {
	Version int   `json:"version"`
	Seed    int64 `json:"seed"`
}

// checkpointEntry is one completed walk: its index, the virtual instant
// the shared clock had reached when the walk finished, and the full walk
// record. On resume the clock is advanced to the latest recorded
// instant, so (at Parallelism 1, where walks are strictly sequential)
// the continuation replays exactly the uninterrupted schedule.
type checkpointEntry struct {
	Index int       `json:"index"`
	Clock time.Time `json:"clock"`
	Walk  *Walk     `json:"walk"`
}

// Checkpoint records completed walks to a JSONL file as the crawl makes
// progress, and on reopen serves them back so an interrupted crawl
// resumes without redoing finished walks. Safe for concurrent use.
type Checkpoint struct {
	mu       sync.Mutex
	f        *os.File
	enc      *json.Encoder
	done     map[int]*Walk
	maxClock time.Time
}

// OpenCheckpoint opens (or creates) the checkpoint file at path for a
// crawl with the given seed. An existing file must carry the same seed;
// its recorded walks become available via Completed. A truncated final
// line (interrupted mid-write) is tolerated and ignored.
func OpenCheckpoint(path string, seed int64) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("crawler: open checkpoint: %w", err)
	}
	cp := &Checkpoint{f: f, done: make(map[int]*Walk)}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26) // walks serialize large
	if sc.Scan() {
		var hdr checkpointHeader
		if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: bad header: %w", path, err)
		}
		if hdr.Version != checkpointVersion {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: version %d, want %d", path, hdr.Version, checkpointVersion)
		}
		if hdr.Seed != seed {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: recorded for seed %d, crawl uses seed %d", path, hdr.Seed, seed)
		}
		for sc.Scan() {
			var e checkpointEntry
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				break // interrupted mid-write: drop the partial tail
			}
			cp.done[e.Index] = e.Walk
			if e.Clock.After(cp.maxClock) {
				cp.maxClock = e.Clock
			}
		}
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}

	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
	}
	cp.enc = json.NewEncoder(f)
	if len(cp.done) == 0 {
		// Fresh (or header-only) file: (re)write the header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
		}
		if err := cp.enc.Encode(checkpointHeader{Version: checkpointVersion, Seed: seed}); err != nil {
			f.Close()
			return nil, fmt.Errorf("crawler: checkpoint %s: %w", path, err)
		}
	}
	return cp, nil
}

// Completed returns the recorded walk for index, or nil if the walk has
// not been checkpointed. Safe on a nil checkpoint.
func (cp *Checkpoint) Completed(index int) *Walk {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.done[index]
}

// CompletedCount returns how many walks the checkpoint holds.
func (cp *Checkpoint) CompletedCount() int {
	if cp == nil {
		return 0
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return len(cp.done)
}

// MaxClock returns the latest virtual instant any recorded walk reached
// (zero when empty).
func (cp *Checkpoint) MaxClock() time.Time {
	if cp == nil {
		return time.Time{}
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.maxClock
}

// Record appends a completed walk. Already-recorded indices are ignored,
// so resumed crawls never duplicate entries. Safe on a nil checkpoint.
func (cp *Checkpoint) Record(index int, clock time.Time, w *Walk) error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.done[index]; ok {
		return nil
	}
	if err := cp.enc.Encode(checkpointEntry{Index: index, Clock: clock, Walk: w}); err != nil {
		return fmt.Errorf("crawler: checkpoint record walk %d: %w", index, err)
	}
	cp.done[index] = w
	if clock.After(cp.maxClock) {
		cp.maxClock = clock
	}
	return nil
}

// Close syncs and closes the checkpoint file. Safe on a nil checkpoint.
func (cp *Checkpoint) Close() error {
	if cp == nil {
		return nil
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f == nil {
		return nil
	}
	err := cp.f.Sync()
	if cerr := cp.f.Close(); err == nil {
		err = cerr
	}
	cp.f = nil
	return err
}
