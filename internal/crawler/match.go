package crawler

import (
	"net/url"
	"strings"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/dom"
)

// Element is the wire form of a clickable element: the identification
// signals each crawler sends the central controller (§3.3 — "properties,
// location, bounding boxes, and x-paths").
type Element struct {
	Index       int      `json:"index"`
	Kind        string   `json:"kind"` // "a" or "iframe"
	Href        string   `json:"href,omitempty"`
	AttrNames   []string `json:"attr_names,omitempty"`
	Box         dom.Rect `json:"box"`
	XPath       string   `json:"xpath"`
	CrossDomain bool     `json:"cross_domain"`
}

// elementFrom converts a browser clickable.
func elementFrom(c browser.Clickable, crossDomain bool) Element {
	return Element{
		Index:       c.Index,
		Kind:        c.Kind,
		Href:        c.Href,
		AttrNames:   c.AttrNames,
		Box:         c.Box,
		XPath:       c.XPath,
		CrossDomain: crossDomain,
	}
}

// hrefSansQuery strips the query string and fragment from an href: the
// comparison form of matching heuristic 1, which must ignore query
// parameters precisely because decorated UIDs differ across crawlers.
func hrefSansQuery(href string) string {
	if href == "" {
		return ""
	}
	if u, err := url.Parse(href); err == nil {
		u.RawQuery = ""
		u.Fragment = ""
		return u.String()
	}
	if i := strings.IndexAny(href, "?#"); i >= 0 {
		return href[:i]
	}
	return href
}

// attrNamesEqual compares attribute-name lists in document order.
func attrNamesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SameElement applies the paper's three heuristics to decide whether two
// elements on two instances of a page are "the same":
//
//  1. Both anchors with equal hrefs, query parameters excluded.
//  2. Equal HTML attribute names and similar bounding boxes — the
//     y-coordinate may differ, allowing for content above that rendered
//     at a different height.
//  3. Equal HTML attribute names and equal x-paths.
func SameElement(a, b Element) bool {
	if a.Kind != b.Kind {
		return false
	}
	// Heuristic 1.
	if a.Kind == "a" && a.Href != "" && b.Href != "" &&
		hrefSansQuery(a.Href) == hrefSansQuery(b.Href) {
		return true
	}
	// Heuristic 2.
	if attrNamesEqual(a.AttrNames, b.AttrNames) &&
		a.Box.X == b.Box.X && a.Box.W == b.Box.W && a.Box.H == b.Box.H {
		return true
	}
	// Heuristic 3.
	if attrNamesEqual(a.AttrNames, b.AttrNames) && a.XPath == b.XPath {
		return true
	}
	return false
}

// Heuristics can be selectively disabled for the ablation benchmarks.
type Heuristics struct {
	Href  bool
	Box   bool
	XPath bool
}

// AllHeuristics enables all three.
var AllHeuristics = Heuristics{Href: true, Box: true, XPath: true}

// sameElementWith is SameElement under a heuristic mask. Degenerate
// signals never match: heuristic 2 requires a laid-out (non-zero) box and
// heuristic 3 a non-empty x-path.
func sameElementWith(a, b Element, h Heuristics) bool {
	if a.Kind != b.Kind {
		return false
	}
	if h.Href && a.Kind == "a" && a.Href != "" && b.Href != "" &&
		hrefSansQuery(a.Href) == hrefSansQuery(b.Href) {
		return true
	}
	if h.Box && attrNamesEqual(a.AttrNames, b.AttrNames) &&
		a.Box.W > 0 && a.Box.H > 0 &&
		a.Box.X == b.Box.X && a.Box.W == b.Box.W && a.Box.H == b.Box.H {
		return true
	}
	if h.XPath && attrNamesEqual(a.AttrNames, b.AttrNames) &&
		a.XPath != "" && a.XPath == b.XPath {
		return true
	}
	return false
}

// MatchTriple is one element present on all three synchronized crawlers,
// identified by its index in each crawler's list.
type MatchTriple struct {
	Indices map[string]int // crawler name → index
	Kind    string
	// CrossDomain is taken from the first crawler's instance.
	CrossDomain bool
}

// MatchElements finds the elements common to all three lists under the
// given heuristics, greedily in the first list's document order; each
// element in lists 2 and 3 matches at most once.
func MatchElements(lists map[string][]Element, h Heuristics) []MatchTriple {
	l1, l2, l3 := lists[Safari1], lists[Safari2], lists[Chrome3]
	used2 := make([]bool, len(l2))
	used3 := make([]bool, len(l3))
	var out []MatchTriple
	for _, e1 := range l1 {
		i2 := findMatch(e1, l2, used2, h)
		if i2 < 0 {
			continue
		}
		i3 := findMatch(e1, l3, used3, h)
		if i3 < 0 {
			continue
		}
		used2[i2] = true
		used3[i3] = true
		out = append(out, MatchTriple{
			Indices: map[string]int{
				Safari1: e1.Index,
				Safari2: l2[i2].Index,
				Chrome3: l3[i3].Index,
			},
			Kind:        e1.Kind,
			CrossDomain: e1.CrossDomain,
		})
	}
	return out
}

// MatchPair aligns two element lists greedily in a's document order and
// returns, for each element of a, the index of its match in b (-1 when
// none). Aligning whole lists rather than searching for one element is
// essential: heuristic 2 ignores the y-coordinate, so two same-width
// anchors at the same x are indistinguishable in isolation — document
// order is what disambiguates them.
func MatchPair(a, b []Element, h Heuristics) []int {
	used := make([]bool, len(b))
	out := make([]int, len(a))
	for i, e := range a {
		out[i] = findMatch(e, b, used, h)
		if out[i] >= 0 {
			used[out[i]] = true
		}
	}
	return out
}

func findMatch(e Element, list []Element, used []bool, h Heuristics) int {
	for i, cand := range list {
		if used[i] {
			continue
		}
		if sameElementWith(e, cand, h) {
			return i
		}
	}
	return -1
}
