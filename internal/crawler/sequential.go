package crawler

import (
	"errors"
	"fmt"
	"time"

	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/stats"
)

// SequentialCrawl implements the prior-work crawling strategy the paper
// contrasts with its synchronized design (§8.1): users are simulated one
// after another by a single crawler running the same deterministic
// "script" over the same seeds, with no central controller. Because
// nothing synchronizes the users, they drift apart on dynamic content,
// and nothing guarantees a website is visited by more than one user — the
// disadvantage the paper calls out, measured by
// uid.SequentialIdentify and BenchmarkAblationSequentialBaseline.
//
// Users are named Seq-1..Seq-n; their records share the Walk/Step
// structure so the rest of the tooling applies.
func SequentialCrawl(cfg Config, users int) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Network == nil {
		return nil, errors.New("crawler: Config.Network is required")
	}
	if len(cfg.Seeders) == 0 {
		return nil, errors.New("crawler: Config.Seeders is empty")
	}
	if users < 1 {
		users = 2
	}

	names := make([]string, users)
	for u := range names {
		names[u] = fmt.Sprintf("Seq-%d", u+1)
	}
	ds := &Dataset{Seed: cfg.Seed, Crawlers: names}
	for i := 0; i < cfg.Walks; i++ {
		ds.Walks = append(ds.Walks, &Walk{
			Index:    i,
			Seeder:   cfg.Seeders[i%len(cfg.Seeders)],
			SeedLoad: map[string]*CrawlerStep{},
		})
	}

	split := stats.NewSplitter(stats.DeriveSeed(cfg.Seed, "sequential"))
	for u, name := range names {
		for i, w := range ds.Walks {
			runSequentialWalk(cfg, split, w, name, fmt.Sprintf("w%d-squser%d", i, u+1))
		}
	}
	// Outcomes are not meaningful without synchronization; mark every
	// step OK so generic accounting functions don't misread them.
	for _, w := range ds.Walks {
		for _, s := range w.Steps {
			s.Outcome = OutcomeOK
		}
	}
	return ds, nil
}

// runSequentialWalk walks one user through one walk. The element choice
// repeats the controller's preference order but over the user's own page
// only — the same script every user runs, which still diverges wherever
// content is dynamic.
func runSequentialWalk(cfg Config, split *stats.Splitter, w *Walk, name, profile string) {
	b := browser.New(browser.Config{
		Seed:      cfg.Seed,
		ProfileID: profile,
		ClientID:  fmt.Sprintf("%s-%s", name, profile),
		Machine:   cfg.Machine,
		UserAgent: browser.DefaultSafariUA,
		Policy:    policyFor(Safari1),
		Network:   cfg.Network,
	})
	seedURL := "http://" + w.Seeder + "/"
	page, err := b.Navigate(seedURL, "")
	rec := &CrawlerStep{Crawler: name, Profile: profile, StartURL: seedURL, Requests: b.Requests()}
	if err != nil {
		rec.Fail = "connect: " + err.Error()
		w.SeedLoad[name] = rec
		return
	}
	rec.LandedURL = page.URL.String()
	rec.After = takeSnapshot(b, page.URL.String())
	w.SeedLoad[name] = rec

	for step := 1; step <= cfg.StepsPerWalk; step++ {
		srec := &CrawlerStep{Crawler: name, Profile: profile, StartURL: page.URL.String(), ClickIndex: -1}
		srec.Before = takeSnapshot(b, page.URL.String())
		idx := pickSequential(cfg, split, w.Index, step, b, page)
		if idx < 0 {
			srec.Fail = "no clickable element"
			putSequentialStep(w, step, name, srec)
			return
		}
		srec.ClickIndex = idx
		b.ResetRequests()
		next, cerr := b.Click(page, idx)
		if cerr != nil {
			srec.Fail = "click: " + cerr.Error()
			srec.Requests = b.Requests()
			putSequentialStep(w, step, name, srec)
			return
		}
		cfg.Network.Clock().Advance(time.Duration(cfg.DwellSeconds) * time.Second)
		srec.NavChain = next.Chain
		srec.LandedURL = next.URL.String()
		srec.Requests = b.Requests()
		srec.After = takeSnapshot(b, next.URL.String())
		putSequentialStep(w, step, name, srec)
		page = next
	}
}

// pickSequential chooses an element with the controller's preference
// order, seeded identically for every user — the "same script" — yet
// operating on each user's own (possibly different) page.
func pickSequential(cfg Config, split *stats.Splitter, walk, step int, b *browser.Browser, page *browser.Page) int {
	cs := b.Clickables(page)
	if len(cs) == 0 {
		return -1
	}
	var iframes, cross, all []int
	for _, c := range cs {
		all = append(all, c.Index)
		switch {
		case c.Kind == "iframe":
			iframes = append(iframes, c.Index)
		case b.CrossDomain(page, c):
			cross = append(cross, c.Index)
		}
	}
	rng := stats.AcquireRNG(split.Seed(fmt.Sprintf("pick/%d/%d", walk, step)))
	defer rng.Release()
	switch {
	case len(iframes) > 0 && (len(cross) == 0 || rng.Bool(cfg.IframeBias)):
		return iframes[rng.Intn(len(iframes))]
	case len(cross) > 0:
		return cross[rng.Intn(len(cross))]
	default:
		return all[rng.Intn(len(all))]
	}
}

func putSequentialStep(w *Walk, stepIdx int, name string, rec *CrawlerStep) {
	for len(w.Steps) < stepIdx {
		w.Steps = append(w.Steps, &Step{
			Walk:    w.Index,
			Index:   len(w.Steps) + 1,
			Records: map[string]*CrawlerStep{},
		})
	}
	w.Steps[stepIdx-1].Records[name] = rec
}
