// Package crawler implements CrumbCruncher's measurement crawl: four
// synchronized crawlers (Safari-1, Safari-2, Chrome-3 in parallel plus the
// trailing repeat crawler Safari-1R), a central HTTP controller that picks
// the element all crawlers click using the paper's three matching
// heuristics (§3.3), ten-step random walks from seeder domains (§3.1), and
// the dataset of cookies, localStorage and web requests the analysis
// pipeline consumes.
package crawler

import (
	"time"

	"crumbcruncher/internal/browser"
)

// Crawler names, as in the paper (§3.2).
const (
	Safari1  = "Safari-1"
	Safari2  = "Safari-2"
	Chrome3  = "Chrome-3"
	Safari1R = "Safari-1R"
)

// ParallelCrawlers are the three crawlers the controller synchronizes;
// Safari-1R trails Safari-1 and is not part of the rendezvous.
var ParallelCrawlers = []string{Safari1, Safari2, Chrome3}

// AllCrawlers lists all four crawlers.
var AllCrawlers = []string{Safari1, Safari2, Chrome3, Safari1R}

// SameProfile reports whether two crawlers simulate the same user.
func SameProfile(a, b string) bool {
	if a == b {
		return true
	}
	return (a == Safari1 && b == Safari1R) || (a == Safari1R && b == Safari1)
}

// ProfileOf maps a crawler name to its simulated-user label within a walk.
func ProfileOf(crawler string) string {
	if crawler == Safari1R {
		return Safari1
	}
	return crawler
}

// CookieRecord is a recorded first-party cookie.
type CookieRecord struct {
	Name    string    `json:"name"`
	Value   string    `json:"value"`
	Domain  string    `json:"domain"`
	Created time.Time `json:"created"`
	Expires time.Time `json:"expires,omitempty"`
}

// Snapshot is the first-party storage state of a page, recorded at each
// crawl step (§3.1: "all first-party cookies, local storage values").
type Snapshot struct {
	URL     string            `json:"url"`
	Cookies []CookieRecord    `json:"cookies,omitempty"`
	Local   map[string]string `json:"local,omitempty"`
}

// StepOutcome classifies how a synchronized step ended.
type StepOutcome string

const (
	// OutcomeOK is a fully successful, synchronized step.
	OutcomeOK StepOutcome = "ok"
	// OutcomeConnectError is a network failure reaching the site (the
	// paper's 3.3%).
	OutcomeConnectError StepOutcome = "connect_error"
	// OutcomeNoCommonElement means the controller found no element
	// present on all three crawlers (the paper's 7.6%).
	OutcomeNoCommonElement StepOutcome = "no_common_element"
	// OutcomeDivergent means the clicked elements led to different
	// registered FQDNs (the paper's 1.8%); the step's data is still
	// analysed.
	OutcomeDivergent StepOutcome = "divergent_landing"
	// OutcomeNoClickables means the page offered nothing to click.
	OutcomeNoClickables StepOutcome = "no_clickables"
	// OutcomeClickFailed means a crawler's click could not produce a
	// navigation (e.g. an iframe without a loadable ad).
	OutcomeClickFailed StepOutcome = "click_failed"
)

// CrawlerStep is one crawler's record of one step.
type CrawlerStep struct {
	Crawler  string `json:"crawler"`
	Profile  string `json:"profile"`
	StartURL string `json:"start_url"`
	// Before is the originator's first-party storage before the click.
	Before Snapshot `json:"before"`
	// ClickIndex is the clicked element's index in this crawler's
	// clickable list (-1 when nothing was clicked).
	ClickIndex int `json:"click_index"`
	// Clicked describes the clicked element.
	Clicked *Element `json:"clicked,omitempty"`
	// NavChain is the navigation redirect chain the click produced,
	// ending at the landing page.
	NavChain []browser.Hop `json:"nav_chain,omitempty"`
	// Requests are all web requests observed during the step (click
	// navigation hops, landing-page subframes and beacons).
	Requests []browser.RequestRecord `json:"requests,omitempty"`
	// LandedURL is the final page URL.
	LandedURL string `json:"landed_url,omitempty"`
	// After is the landing page's first-party storage after load.
	After Snapshot `json:"after"`
	// Fail describes this crawler's individual failure, if any.
	Fail string `json:"fail,omitempty"`
}

// Step is one synchronized step of a walk.
type Step struct {
	Walk    int                     `json:"walk"`
	Index   int                     `json:"index"`
	Outcome StepOutcome             `json:"outcome"`
	Records map[string]*CrawlerStep `json:"records"`
}

// Walk is one ten-step random walk from a seeder domain.
type Walk struct {
	Index  int     `json:"index"`
	Seeder string  `json:"seeder"`
	Steps  []*Step `json:"steps"`
	// SeedLoad captures each crawler's requests and storage after
	// loading the seeder page itself (before the first click).
	SeedLoad map[string]*CrawlerStep `json:"seed_load,omitempty"`
	// Ended describes why the walk stopped before its full length.
	Ended StepOutcome `json:"ended,omitempty"`
	// Degraded quarantines a walk that was cut short by exhausted
	// transport failures or a crawler panic, recording why; its data is
	// still analysed.
	Degraded string `json:"degraded,omitempty"`
	// Skipped marks a walk that never started because the crawl was
	// cancelled; resumed crawls re-run skipped walks.
	Skipped bool `json:"skipped,omitempty"`
}

// Dataset is a complete crawl.
type Dataset struct {
	Seed     int64    `json:"seed"`
	Crawlers []string `json:"crawlers"`
	Walks    []*Walk  `json:"walks"`
}

// WalkCount returns the number of recorded walks.
func (d *Dataset) WalkCount() int { return len(d.Walks) }

// ForEachWalk calls fn for every walk in recorded order, stopping at
// the first error. It implements the walk-source contract the analysis
// layer shares with store-backed datasets.
func (d *Dataset) ForEachWalk(fn func(*Walk) error) error {
	for _, w := range d.Walks {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

// Walk returns the walk with the given index, or nil when the dataset
// has no such walk. Datasets record walks at their index position, but
// a degraded or filtered dataset may not, so the position is verified.
func (d *Dataset) Walk(idx int) *Walk {
	if idx >= 0 && idx < len(d.Walks) && d.Walks[idx] != nil && d.Walks[idx].Index == idx {
		return d.Walks[idx]
	}
	for _, w := range d.Walks {
		if w.Index == idx {
			return w
		}
	}
	return nil
}

// Steps returns all steps across all walks in order.
func (d *Dataset) Steps() []*Step {
	var out []*Step
	for _, w := range d.Walks {
		out = append(out, w.Steps...)
	}
	return out
}

// StepCount returns the total number of attempted steps.
func (d *Dataset) StepCount() int {
	n := 0
	for _, w := range d.Walks {
		n += len(w.Steps)
	}
	return n
}

// OutcomeCounts tallies step outcomes — the failure-rate table of §3.3.
func (d *Dataset) OutcomeCounts() map[StepOutcome]int {
	out := make(map[StepOutcome]int)
	for _, s := range d.Steps() {
		out[s.Outcome]++
	}
	return out
}
