package crawler

import (
	"sync"
	"testing"

	"crumbcruncher/internal/dom"
)

// submitAll drives three crawlers through one element rendezvous.
func submitAll(t *testing.T, api API, walk, step int, lists map[string][]Element) map[string]Decision {
	t.Helper()
	var mu sync.Mutex
	out := make(map[string]Decision)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			d, err := api.SubmitElements(walk, step, name, lists[name])
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			out[name] = d
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return out
}

func threeSameLists() map[string][]Element {
	els := []Element{
		{Index: 0, Kind: "a", Href: "http://same.com/p", AttrNames: []string{"href"}, CrossDomain: true},
		{Index: 1, Kind: "iframe", AttrNames: []string{"src", "width"}, Box: dom.Rect{X: 0, W: 300, H: 250}, XPath: "/iframe[1]"},
	}
	return map[string][]Element{Safari1: els, Safari2: els, Chrome3: els}
}

func TestControllerAgreesAcrossCrawlers(t *testing.T) {
	c := NewController(1, AllHeuristics, 0.6)
	decs := submitAll(t, c, 0, 1, threeSameLists())
	if len(decs) != 3 {
		t.Fatalf("decisions = %d", len(decs))
	}
	kind := decs[Safari1].Kind
	for _, name := range ParallelCrawlers {
		d := decs[name]
		if !d.Found {
			t.Fatalf("%s: not found", name)
		}
		if d.Kind != kind {
			t.Fatalf("crawlers disagree on kind: %v", decs)
		}
	}
}

func TestControllerNoMatch(t *testing.T) {
	c := NewController(1, AllHeuristics, 0.6)
	lists := map[string][]Element{
		Safari1: {{Index: 0, Kind: "a", Href: "http://a.com/1", AttrNames: []string{"href"}}},
		Safari2: {{Index: 0, Kind: "a", Href: "http://b.com/2", AttrNames: []string{"href"}, Box: dom.Rect{X: 5}}},
		Chrome3: {{Index: 0, Kind: "a", Href: "http://c.com/3", AttrNames: []string{"href"}, Box: dom.Rect{X: 9}}},
	}
	decs := submitAll(t, c, 0, 1, lists)
	for name, d := range decs {
		if d.Found {
			t.Fatalf("%s: expected no match", name)
		}
	}
}

func TestControllerDeterministicChoice(t *testing.T) {
	lists := threeSameLists()
	d1 := submitAll(t, NewController(7, AllHeuristics, 0.6), 3, 2, lists)
	d2 := submitAll(t, NewController(7, AllHeuristics, 0.6), 3, 2, lists)
	if d1[Safari1] != d2[Safari1] {
		t.Fatalf("controller choice not deterministic: %v vs %v", d1[Safari1], d2[Safari1])
	}
}

func TestControllerIframeBias(t *testing.T) {
	// With bias 1.0 the iframe must always win over the cross-domain
	// anchor.
	c := NewController(1, AllHeuristics, 1.0)
	for step := 1; step <= 5; step++ {
		decs := submitAll(t, c, 10+step, step, threeSameLists())
		if decs[Safari1].Kind != "iframe" {
			t.Fatalf("step %d: bias 1.0 chose %q", step, decs[Safari1].Kind)
		}
	}
	// With bias 0 the cross-domain anchor must always win.
	c0 := NewController(1, AllHeuristics, 0)
	for step := 1; step <= 5; step++ {
		decs := submitAll(t, c0, 20+step, step, threeSameLists())
		if decs[Safari1].Kind != "a" {
			t.Fatalf("step %d: bias 0 chose %q", step, decs[Safari1].Kind)
		}
	}
}

func TestLandingSync(t *testing.T) {
	c := NewController(1, AllHeuristics, 0.6)
	var wg sync.WaitGroup
	results := make(chan LandingResult, 3)
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := c.SubmitLanding(0, 1, name, "shop.example.com")
			if err != nil {
				t.Error(err)
				return
			}
			results <- res
		}(name)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if !r.Synchronized {
			t.Fatal("identical FQDNs must synchronize")
		}
	}
}

func TestLandingDivergence(t *testing.T) {
	c := NewController(1, AllHeuristics, 0.6)
	fqdns := map[string]string{Safari1: "a.com", Safari2: "a.com", Chrome3: "b.com"}
	var wg sync.WaitGroup
	results := make(chan LandingResult, 3)
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := c.SubmitLanding(0, 2, name, fqdns[name])
			if err != nil {
				t.Error(err)
				return
			}
			results <- res
		}(name)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.Synchronized {
			t.Fatal("different FQDNs must not synchronize")
		}
	}
}

func TestControllerOverHTTP(t *testing.T) {
	c := NewController(1, AllHeuristics, 0.6)
	base, shutdown, err := c.Serve()
	if err != nil {
		t.Skipf("cannot listen on loopback: %v", err)
	}
	defer shutdown()
	client := NewHTTPClient(base)
	decs := submitAll(t, client, 0, 1, threeSameLists())
	for name, d := range decs {
		if !d.Found {
			t.Fatalf("%s over HTTP: not found", name)
		}
	}
	// Landing round trip.
	var wg sync.WaitGroup
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if _, err := client.SubmitLanding(0, 1, name, "x.com"); err != nil {
				t.Error(err)
			}
		}(name)
	}
	wg.Wait()
}

func TestLandingEmptyFQDNNotSynchronized(t *testing.T) {
	// Regression: a crawler whose click failed submits an empty FQDN.
	// The rendezvous must not treat "" as "no value yet" — doing so once
	// let the one successful crawler continue alone and deadlock the
	// next step's barrier for 30 seconds.
	c := NewController(1, AllHeuristics, 0.6)
	fqdns := map[string]string{Safari1: "", Safari2: "", Chrome3: "shop.com"}
	var wg sync.WaitGroup
	results := make(chan LandingResult, 3)
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, err := c.SubmitLanding(7, 1, name, fqdns[name])
			if err != nil {
				t.Error(err)
				return
			}
			results <- res
		}(name)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.Synchronized {
			t.Fatal("empty FQDNs must not synchronize with a real landing")
		}
	}
	// All-empty (every click failed) still counts as "synchronized" —
	// every crawler exits via its own click error regardless.
	results2 := make(chan LandingResult, 3)
	for _, name := range ParallelCrawlers {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			res, _ := c.SubmitLanding(7, 2, name, "")
			results2 <- res
		}(name)
	}
	wg.Wait()
	close(results2)
	for r := range results2 {
		if !r.Synchronized {
			t.Fatal("identical (even empty) FQDNs should compare equal")
		}
	}
}
