package crawler

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"crumbcruncher/internal/stats"
)

// Decision is the controller's answer to an element submission: which of
// the crawler's own elements to click.
type Decision struct {
	Found bool   `json:"found"`
	Index int    `json:"index"`
	Kind  string `json:"kind,omitempty"`
}

// LandingResult is the controller's answer to a landing-FQDN submission.
type LandingResult struct {
	Synchronized bool `json:"synchronized"`
}

// API is the controller surface crawlers talk to. The production
// implementation is HTTP over loopback (the paper's "central controller (a
// local HTTP server)"); tests may use the Controller directly.
type API interface {
	SubmitElements(walk, step int, crawler string, elements []Element) (Decision, error)
	SubmitLanding(walk, step int, crawler, fqdn string) (LandingResult, error)
}

// ErrBarrierTimeout is returned when the other crawlers never arrive at a
// rendezvous (a crawler died mid-step).
var ErrBarrierTimeout = errors.New("crawler: controller barrier timeout")

// Controller synchronizes the three parallel crawlers and picks the
// element to click, preferring iframes (expected to contain ads) and
// cross-domain anchors, per §3.1.
type Controller struct {
	split      *stats.Splitter
	heOn       Heuristics
	iframeBias float64
	timeout    time.Duration

	mu       sync.Mutex
	barriers map[string]*barrier

	// afterBarrier, when set, is invoked by the completing arrival of
	// every rendezvous — while the other crawlers of the walk are still
	// blocked in their Submit calls — giving the crawl a point where it
	// can advance the virtual clock with no crawler concurrently
	// stamping requests (see clockLedger).
	afterBarrier func(walk int)
}

// NewController returns a controller. iframeBias is the probability of
// choosing a matched iframe when cross-domain anchors are also available.
func NewController(seed int64, heur Heuristics, iframeBias float64) *Controller {
	return &Controller{
		split:      stats.NewSplitter(stats.DeriveSeed(seed, "controller")),
		heOn:       heur,
		iframeBias: iframeBias,
		timeout:    30 * time.Second,
		barriers:   make(map[string]*barrier),
	}
}

type barrier struct {
	need   int
	subs   map[string]interface{}
	done   chan struct{}
	result interface{}
}

// rendezvous registers a submission under key and blocks until need
// submissions arrived; the last arrival runs compute over all submissions
// exactly once.
func (c *Controller) rendezvous(key, crawler string, sub interface{}, need int,
	compute func(map[string]interface{}) interface{}) (interface{}, error) {

	c.mu.Lock()
	b, ok := c.barriers[key]
	if !ok {
		b = &barrier{need: need, subs: make(map[string]interface{}), done: make(chan struct{})}
		c.barriers[key] = b
	}
	b.subs[crawler] = sub
	if len(b.subs) == b.need {
		b.result = compute(b.subs)
		close(b.done)
		delete(c.barriers, key)
	}
	c.mu.Unlock()

	select {
	case <-b.done:
		return b.result, nil
	case <-time.After(c.timeout): //crumb:allow wallclock real deadlock guard; never fires on the success path
		return nil, ErrBarrierTimeout
	}
}

// SubmitElements implements API.
func (c *Controller) SubmitElements(walk, step int, crawler string, elements []Element) (Decision, error) {
	key := fmt.Sprintf("el/%d/%d", walk, step)
	res, err := c.rendezvous(key, crawler, elements, len(ParallelCrawlers),
		func(subs map[string]interface{}) interface{} {
			lists := make(map[string][]Element, len(subs))
			for name, v := range subs {
				lists[name] = v.([]Element)
			}
			res := c.decide(walk, step, lists)
			if c.afterBarrier != nil {
				c.afterBarrier(walk)
			}
			return res
		})
	if err != nil {
		return Decision{}, err
	}
	decisions := res.(map[string]Decision)
	return decisions[crawler], nil
}

// decide matches the three element lists and picks the click target. The
// choice is seeded per (walk, step), so it does not depend on goroutine
// arrival order.
func (c *Controller) decide(walk, step int, lists map[string][]Element) map[string]Decision {
	matches := MatchElements(lists, c.heOn)
	out := make(map[string]Decision, len(ParallelCrawlers))
	if len(matches) == 0 {
		for _, name := range ParallelCrawlers {
			out[name] = Decision{Found: false, Index: -1}
		}
		return out
	}
	var iframes, crossAnchors []MatchTriple
	for _, m := range matches {
		switch {
		case m.Kind == "iframe":
			iframes = append(iframes, m)
		case m.CrossDomain:
			crossAnchors = append(crossAnchors, m)
		}
	}
	rng := stats.AcquireRNG(c.split.Seed(fmt.Sprintf("pick/%d/%d", walk, step)))
	defer rng.Release()
	var chosen MatchTriple
	switch {
	case len(iframes) > 0 && (len(crossAnchors) == 0 || rng.Bool(c.iframeBias)):
		chosen = iframes[rng.Intn(len(iframes))]
	case len(crossAnchors) > 0:
		chosen = crossAnchors[rng.Intn(len(crossAnchors))]
	default:
		chosen = matches[rng.Intn(len(matches))]
	}
	for _, name := range ParallelCrawlers {
		out[name] = Decision{Found: true, Index: chosen.Indices[name], Kind: chosen.Kind}
	}
	return out
}

// SubmitLanding implements API: all three landing FQDNs must agree for the
// walk to continue (§3.3).
func (c *Controller) SubmitLanding(walk, step int, crawler, fqdn string) (LandingResult, error) {
	key := fmt.Sprintf("land/%d/%d", walk, step)
	res, err := c.rendezvous(key, crawler, fqdn, len(ParallelCrawlers),
		func(subs map[string]interface{}) interface{} {
			// An empty FQDN marks a failed click; it must compare like
			// any other value (a "" sentinel here once let one crawler
			// sail past two crashed peers and deadlock the next step's
			// rendezvous).
			first, started, same := "", false, true
			for _, v := range subs {
				f := v.(string)
				if !started {
					first, started = f, true
					continue
				}
				if f != first {
					same = false
				}
			}
			if c.afterBarrier != nil {
				c.afterBarrier(walk)
			}
			return LandingResult{Synchronized: same}
		})
	if err != nil {
		return LandingResult{}, err
	}
	return res.(LandingResult), nil
}

// --- HTTP transport -------------------------------------------------------

// elementsRequest is the POST /elements body.
type elementsRequest struct {
	Walk     int       `json:"walk"`
	Step     int       `json:"step"`
	Crawler  string    `json:"crawler"`
	Elements []Element `json:"elements"`
}

// landingRequest is the POST /landing body.
type landingRequest struct {
	Walk    int    `json:"walk"`
	Step    int    `json:"step"`
	Crawler string `json:"crawler"`
	FQDN    string `json:"fqdn"`
}

// Handler exposes the controller over HTTP: POST /elements and POST
// /landing with JSON bodies. Requests block until the step's rendezvous
// completes, exactly like the paper's local controller server.
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /elements", func(w http.ResponseWriter, r *http.Request) {
		var req elementsRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		dec, err := c.SubmitElements(req.Walk, req.Step, req.Crawler, req.Elements)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		writeJSON(w, dec)
	})
	mux.HandleFunc("POST /landing", func(w http.ResponseWriter, r *http.Request) {
		var req landingRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := c.SubmitLanding(req.Walk, req.Step, req.Crawler, req.FQDN)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		}
		writeJSON(w, res)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts the controller on a loopback listener and returns its base
// URL and a shutdown function.
func (c *Controller) Serve() (baseURL string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, fmt.Errorf("crawler: controller listen: %w", err)
	}
	srv := &http.Server{Handler: c.Handler()}
	go srv.Serve(ln) //nolint:errcheck // closed via shutdown
	return "http://" + ln.Addr().String(), func() { srv.Close() }, nil
}

// HTTPClient talks to a served controller.
type HTTPClient struct {
	Base string
	HC   *http.Client
}

// NewHTTPClient returns a client for a controller base URL.
func NewHTTPClient(base string) *HTTPClient {
	return &HTTPClient{Base: base, HC: &http.Client{Timeout: 60 * time.Second}}
}

func (cl *HTTPClient) post(path string, req, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := cl.HC.Post(cl.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("crawler: controller %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// SubmitElements implements API over HTTP.
func (cl *HTTPClient) SubmitElements(walk, step int, crawler string, elements []Element) (Decision, error) {
	var dec Decision
	err := cl.post("/elements", elementsRequest{Walk: walk, Step: step, Crawler: crawler, Elements: elements}, &dec)
	return dec, err
}

// SubmitLanding implements API over HTTP.
func (cl *HTTPClient) SubmitLanding(walk, step int, crawler, fqdn string) (LandingResult, error) {
	var res LandingResult
	err := cl.post("/landing", landingRequest{Walk: walk, Step: step, Crawler: crawler, FQDN: fqdn}, &res)
	return res, err
}
