package runstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
)

// legacyStore serves a single-document SaveRun file — the format the
// deprecated SaveRun/EncodeRun wrote — read-only through the Store
// interface, so old runs keep working with every runstore reader. The
// whole document decodes on open (the format offers no random access),
// which is exactly the cost profile the segment backend replaces.
type legacyStore struct {
	manifest Manifest
	walks    map[int]*crawler.Walk
	order    []int
}

// legacyDoc mirrors the deprecated SavedRun document without importing
// the root package: config and provenance stay raw.
type legacyDoc struct {
	runio.Header
	Config     json.RawMessage  `json:"config"`
	Provenance json.RawMessage  `json:"provenance,omitempty"`
	Dataset    *crawler.Dataset `json:"dataset"`
}

func openLegacy(path string) (Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: open %s: %w", path, err)
	}
	defer f.Close()
	var doc legacyDoc
	want := runio.Header{Format: runio.RunFormat, Version: runio.RunVersion}
	if err := runio.ReadDocument(f, want, &doc); err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", path, err)
	}
	if doc.Dataset == nil {
		return nil, fmt.Errorf("runstore: %s: document has no dataset", path)
	}
	st := &legacyStore{
		manifest: Manifest{
			Header:     runio.Header{Format: runio.WalksFormat, Version: lineWalksVersion, Seed: doc.Dataset.Seed},
			Crawlers:   doc.Dataset.Crawlers,
			Walks:      len(doc.Dataset.Walks),
			Config:     doc.Config,
			Provenance: doc.Provenance,
		},
		walks: make(map[int]*crawler.Walk, len(doc.Dataset.Walks)),
	}
	for _, w := range doc.Dataset.Walks {
		if _, dup := st.walks[w.Index]; !dup {
			st.order = append(st.order, w.Index)
		}
		st.walks[w.Index] = w
	}
	return st, nil
}

func (st *legacyStore) Manifest() Manifest { return st.manifest }
func (st *legacyStore) Walks() int         { return len(st.walks) }

func (st *legacyStore) Append(*crawler.Walk) error {
	return fmt.Errorf("runstore: legacy single-document runs are read-only")
}

func (st *legacyStore) Get(idx int) (*crawler.Walk, error) {
	w, ok := st.walks[idx]
	if !ok {
		return nil, fmt.Errorf("%w: index %d", ErrNoWalk, idx)
	}
	return w, nil
}

func (st *legacyStore) Iter() Cursor {
	order := append([]int(nil), st.order...)
	sort.Ints(order)
	return &legacyCursor{st: st, order: order}
}

func (st *legacyStore) Finalize() error { return nil }
func (st *legacyStore) Close() error    { return nil }

type legacyCursor struct {
	st    *legacyStore
	order []int
	pos   int
}

func (c *legacyCursor) Next() (*crawler.Walk, error) {
	if c.pos >= len(c.order) {
		return nil, io.EOF
	}
	idx := c.order[c.pos]
	c.pos++
	return c.st.walks[idx], nil
}

func (c *legacyCursor) Close() error { return nil }
