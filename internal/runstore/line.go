package runstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
)

// lineWalksVersion is bumped when the line backend's record layout
// changes.
const lineWalksVersion = 1

func lineHeader(seed int64) runio.Header {
	return runio.Header{Format: runio.WalksFormat, Version: lineWalksVersion, Seed: seed}
}

// lineStore is the single-file backend: one runio.LineFile whose first
// entry is the manifest and whose remaining entries are walk records,
// in completion (not index) order. Raw records are kept in memory and
// decoded per lookup, so holding a store open costs the file's bytes —
// never the decoded dataset.
type lineStore struct {
	mu        sync.Mutex
	lf        *runio.LineFile
	path      string
	manifest  Manifest
	raw       map[int][]byte // walk index → raw record payload
	finalized bool
}

func createLine(path string, m Manifest) (Store, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("runstore: %s already exists", path)
	}
	m.Header = lineHeader(m.Seed)
	lf, entries, err := runio.OpenLineFile(path, m.Header)
	if err != nil {
		return nil, err
	}
	if len(entries) != 0 {
		lf.Close()
		return nil, fmt.Errorf("runstore: %s already holds records", path)
	}
	if err := lf.Append(m); err != nil {
		lf.Close()
		return nil, err
	}
	return &lineStore{lf: lf, path: path, manifest: m, raw: map[int][]byte{}}, nil
}

func openLine(path string) (Store, error) {
	lf, entries, err := runio.OpenLineFile(path, runio.Header{Format: runio.WalksFormat, Version: lineWalksVersion})
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		lf.Close()
		return nil, fmt.Errorf("runstore: %s has no manifest record", path)
	}
	st := &lineStore{lf: lf, path: path, raw: map[int][]byte{}}
	if err := json.Unmarshal(entries[0], &st.manifest); err != nil {
		lf.Close()
		return nil, fmt.Errorf("runstore: %s: decode manifest: %w", path, err)
	}
	for _, raw := range entries[1:] {
		var rec struct {
			Index int             `json:"index"`
			Walk  json.RawMessage `json:"walk"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			lf.Close()
			return nil, fmt.Errorf("runstore: %s: decode walk record: %w", path, err)
		}
		if rec.Walk == nil {
			// A trailing manifest record: Finalize's stamp with the
			// final walk count. Last one wins.
			if err := json.Unmarshal(raw, &st.manifest); err != nil {
				lf.Close()
				return nil, fmt.Errorf("runstore: %s: decode manifest: %w", path, err)
			}
			continue
		}
		st.raw[rec.Index] = raw // last record wins, like checkpoint resume
	}
	st.finalized = st.manifest.Walks > 0 && st.manifest.Walks == len(st.raw)
	return st, nil
}

func (st *lineStore) Manifest() Manifest {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.manifest
	if !st.finalized {
		m.Walks = len(st.raw)
	}
	return m
}

func (st *lineStore) Walks() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.raw)
}

func (st *lineStore) Append(w *crawler.Walk) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finalized {
		return ErrFinalized
	}
	raw, err := json.Marshal(walkRecord{Index: w.Index, Walk: w})
	if err != nil {
		return fmt.Errorf("runstore: encode walk %d: %w", w.Index, err)
	}
	if err := st.lf.Append(json.RawMessage(raw)); err != nil {
		return err
	}
	st.raw[w.Index] = raw
	return nil
}

func (st *lineStore) Get(idx int) (*crawler.Walk, error) {
	st.mu.Lock()
	raw, ok := st.raw[idx]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: index %d", ErrNoWalk, idx)
	}
	return decodeWalk(raw)
}

// sortedIndices returns the stored walk indices in ascending order.
func (st *lineStore) sortedIndices() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, 0, len(st.raw))
	for i := range st.raw {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (st *lineStore) Iter() Cursor {
	return &lineCursor{st: st, order: st.sortedIndices()}
}

func (st *lineStore) Finalize() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finalized {
		return nil
	}
	st.manifest.Walks = len(st.raw)
	// Line files are append-only, so the final count lands as a
	// trailing manifest record (no "walk" field distinguishes it from a
	// walk record); openLine folds the last one in over the header's.
	if err := st.lf.Append(st.manifest); err != nil {
		return err
	}
	st.finalized = true
	return st.lf.Sync()
}

func (st *lineStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lf.Close()
}

type lineCursor struct {
	st    *lineStore
	order []int
	pos   int
}

func (c *lineCursor) Next() (*crawler.Walk, error) {
	if c.pos >= len(c.order) {
		return nil, io.EOF
	}
	idx := c.order[c.pos]
	c.pos++
	return c.st.Get(idx)
}

func (c *lineCursor) Close() error { return nil }
