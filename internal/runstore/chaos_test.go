package runstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crumbcruncher/internal/chaos"
	"crumbcruncher/internal/runio"
)

// These tests run the deterministic chaos injector (DESIGN.md §12)
// against the segment backend's write path: the active segment is a
// plain runio.LineFile, so torn writes, seal-time crashes and bit rot
// all land exactly where they would in production, and every recovery
// is replayable from the injector's seed.

// TestSegmentChaosTornAppend crashes mid-append to the active segment
// and verifies reopening recovers every acknowledged walk, drops the
// torn one, and the store finishes the run normally.
func TestSegmentChaosTornAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run.crumbs")
	st, err := Create(dir, BackendSegment, testManifest(5))
	if err != nil {
		t.Fatal(err)
	}
	st.(*segmentStore).segWalks = 100 // no sealing in this scenario

	// Active-segment appends count 1=header, 2=walk 0, ...; crash on
	// walk 2's record with a 9-byte torn prefix landing.
	inj := chaos.New(chaos.Config{Seed: 5, Target: runio.SegmentFormat, CrashAtRecord: 4, TearBytes: 9})
	runio.SetFault(inj)
	var acked []int
	var crashErr error
	for i := 0; i < 5; i++ {
		if err := st.Append(testWalk(i)); err != nil {
			crashErr = err
			break
		}
		acked = append(acked, i)
	}
	runio.SetFault(nil)
	if !errors.Is(crashErr, chaos.ErrCrash) {
		t.Fatalf("append error = %v, want the chaos crash", crashErr)
	}
	if !reflect.DeepEqual(acked, []int{0, 1}) {
		t.Fatalf("acked walks = %v, want [0 1]", acked)
	}
	// The "process" died: reopen without closing, like a real crash.
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	if st2.Walks() != len(acked) {
		t.Fatalf("recovered %d walks, want %d", st2.Walks(), len(acked))
	}
	for i := 2; i < 5; i++ {
		if err := st2.Append(testWalk(i)); err != nil {
			t.Fatalf("append walk %d after recovery: %v", i, err)
		}
	}
	if err := st2.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := drain(t, st2)
	if len(got) != 5 {
		t.Fatalf("drained %d walks, want 5", len(got))
	}
	for i, w := range got {
		if !reflect.DeepEqual(w, testWalk(i)) {
			t.Fatalf("walk %d corrupted across crash recovery", i)
		}
	}
	st2.Close()
}

// TestSegmentChaosSealCrash crashes on the sidecar index append — after
// the sealed sgz landed, before the jsonl was removed. Reopening must
// re-adopt the jsonl (the index never acknowledged the seal) and the
// run completes with every walk intact.
func TestSegmentChaosSealCrash(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run.crumbs")
	st, err := Create(dir, BackendSegment, testManifest(6))
	if err != nil {
		t.Fatal(err)
	}
	st.(*segmentStore).segWalks = 2

	// The index header landed at Create, before the injector installs,
	// so the first matching append it sees is the first seal's entry.
	inj := chaos.New(chaos.Config{Seed: 6, Target: runio.SegmentIndexFormat, CrashAtRecord: 1})
	runio.SetFault(inj)
	if err := st.Append(testWalk(0)); err != nil {
		t.Fatal(err)
	}
	err = st.Append(testWalk(1)) // triggers the seal, which crashes
	runio.SetFault(nil)
	if !errors.Is(err, chaos.ErrCrash) {
		t.Fatalf("sealing append error = %v, want the chaos crash", err)
	}
	// The crash window left both artifacts: the sealed sgz and the
	// unsealed jsonl the index never recorded.
	if _, err := os.Stat(segSealedPath(dir, 0)); err != nil {
		t.Fatalf("sealed segment missing after crash: %v", err)
	}
	if _, err := os.Stat(segJSONLPath(dir, 0)); err != nil {
		t.Fatalf("unsealed jsonl missing after crash: %v", err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after seal crash: %v", err)
	}
	if st2.Walks() != 2 {
		t.Fatalf("recovered %d walks, want 2", st2.Walks())
	}
	for i := 2; i < 4; i++ {
		if err := st2.Append(testWalk(i)); err != nil {
			t.Fatalf("append walk %d after recovery: %v", i, err)
		}
	}
	if err := st2.Finalize(); err != nil {
		t.Fatal(err)
	}
	got := drain(t, st2)
	if len(got) != 4 {
		t.Fatalf("drained %d walks, want 4", len(got))
	}
	for i, w := range got {
		if !reflect.DeepEqual(w, testWalk(i)) {
			t.Fatalf("walk %d corrupted across seal-crash recovery", i)
		}
	}
	st2.Close()
}

// TestSegmentChaosBitFlip writes latent bit rot into a mid-file record
// of the active segment. The damage surfaces on reopen: the first Open
// fails with ErrCorrupt and quarantines the segment, the second opens
// clean with the damaged segment's walks dropped — never silently read.
func TestSegmentChaosBitFlip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "run.crumbs")
	st, err := Create(dir, BackendSegment, testManifest(7))
	if err != nil {
		t.Fatal(err)
	}
	st.(*segmentStore).segWalks = 100

	// Flip a bit in walk 1's record (append 3: 1=header, 2=walk 0). The
	// write itself succeeds; the damage waits for a reader.
	inj := chaos.New(chaos.Config{Seed: 7, Target: runio.SegmentFormat, FlipAtRecord: 3})
	runio.SetFault(inj)
	for i := 0; i < 5; i++ {
		if err := st.Append(testWalk(i)); err != nil {
			t.Fatalf("append walk %d: %v", i, err)
		}
	}
	runio.SetFault(nil)
	st.Close()

	if _, err := Open(dir); !errors.Is(err, runio.ErrCorrupt) {
		t.Fatalf("open over bit rot = %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(segJSONLPath(dir, 0) + ".corrupt"); err != nil {
		t.Fatalf("damaged segment not quarantined: %v", err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
	if st2.Walks() != 0 {
		t.Fatalf("store reads %d walks from a quarantined segment, want 0", st2.Walks())
	}
	st2.Close()
}
