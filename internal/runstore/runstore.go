// Package runstore is the pluggable storage API in front of
// internal/runio for recorded crawls. A Store holds one crawl — a
// manifest (seed, config, provenance) plus the walk records — behind a
// backend-neutral interface: append walks as they complete, fetch a
// single walk by index, or iterate the whole run in walk order through
// a cursor, all without ever materialising the complete dataset in
// memory.
//
// Two backends ship (DESIGN.md §13):
//
//   - line: a single CRC-framed JSONL file (the runio.LineFile format
//     the checkpoint layer already uses). Simple, greppable, and the
//     natural migration target for the old single-document SaveRun
//     files. Random access decodes from an in-memory raw-record table,
//     so memory is O(compressed file), not O(decoded dataset).
//   - segment: a directory of fixed-size walk segments, gzip-compressed
//     as they seal, with a sidecar index for random access and an
//     atomically rewritten manifest. Memory is O(one segment); this is
//     the backend for 100k-walk datasets.
//
// Legacy single-document SaveRun files open read-only through the same
// interface, so every reader in the tree speaks runstore regardless of
// how a run was written. The package depends only on crawler and runio;
// analysis layers sit above it.
package runstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
)

// Manifest identifies a stored run: the versioned artifact header, the
// crawler roster, the walk count (0 until Finalize on a store still
// being written), and the raw configuration and provenance documents.
// Config stays a raw JSON message so this package does not depend on
// the core config type; callers decode it into their own Config.
type Manifest struct {
	runio.Header
	Crawlers   []string        `json:"crawlers,omitempty"`
	Walks      int             `json:"walks"`
	Config     json.RawMessage `json:"config,omitempty"`
	Provenance json.RawMessage `json:"provenance,omitempty"`
}

// Store is one recorded crawl behind a pluggable backend.
type Store interface {
	// Manifest returns the run's identity. Walks is authoritative only
	// after Finalize; on a store being appended to it reports the count
	// so far.
	Manifest() Manifest
	// Walks returns the number of walk records currently readable.
	Walks() int
	// Append records one completed walk. Walks may arrive out of index
	// order (parallel crawls finish out of order); readers always see
	// index order.
	Append(w *crawler.Walk) error
	// Get returns the walk with the given index, decoding only what
	// that lookup needs. A missing index returns ErrNoWalk.
	Get(idx int) (*crawler.Walk, error)
	// Iter returns a cursor over all walks in ascending index order.
	Iter() Cursor
	// Finalize seals the store: flushes pending segments, stamps the
	// final walk count into the manifest, and fsyncs. A finalized store
	// remains readable; further Appends fail.
	Finalize() error
	// Close releases the store's file handles. Closing without
	// Finalize leaves a resumable (crash-equivalent) store on disk.
	Close() error
}

// Cursor iterates a store's walks in ascending index order. Next
// returns io.EOF after the last walk.
type Cursor interface {
	Next() (*crawler.Walk, error)
	Close() error
}

// ErrNoWalk is returned by Get for an index the store has no record of.
var ErrNoWalk = fmt.Errorf("runstore: no such walk")

// ErrFinalized is returned by Append on a store that has been sealed.
var ErrFinalized = fmt.Errorf("runstore: store is finalized")

// Backend names a storage backend.
type Backend string

const (
	// BackendLine is the single CRC-framed line-file backend.
	BackendLine Backend = "line"
	// BackendSegment is the sharded, compressed segment-file backend.
	BackendSegment Backend = "segment"
)

// SegmentSuffix marks a path as a segment-backend directory. DetectBackend
// picks the segment backend for any path ending in it.
const SegmentSuffix = ".crumbs"

// DetectBackend picks the backend a fresh store at path should use:
// segment for directory-style paths (trailing separator or the
// SegmentSuffix), line otherwise.
func DetectBackend(path string) Backend {
	if strings.HasSuffix(path, "/") || strings.HasSuffix(path, SegmentSuffix) {
		return BackendSegment
	}
	return BackendLine
}

// Create makes a new, empty store at path with the given backend and
// manifest. The manifest's Walks field is ignored (stamped at
// Finalize). Creating over an existing run fails rather than
// truncating it.
func Create(path string, backend Backend, m Manifest) (Store, error) {
	m.Walks = 0
	switch backend {
	case BackendLine:
		return createLine(path, m)
	case BackendSegment:
		return createSegment(path, m)
	default:
		return nil, fmt.Errorf("runstore: unknown backend %q", backend)
	}
}

// Open opens an existing store at path, sniffing the backend: a
// directory is a segment store; a file is a line store or — for runs
// written by the deprecated SaveRun — a legacy single-document run,
// served read-only through the same interface.
func Open(path string) (Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: open %s: %w", path, err)
	}
	if fi.IsDir() {
		return openSegment(path)
	}
	kind, err := sniffFile(path)
	if err != nil {
		return nil, err
	}
	if kind == fileLegacy {
		return openLegacy(path)
	}
	return openLine(path)
}

// fileKind classifies a run file on disk.
type fileKind int

const (
	fileLine fileKind = iota
	fileLegacy
)

// sniffFile distinguishes a line-backend walk file from a legacy
// single-document SaveRun file without decoding either: a line store's
// first frame carries the WalksFormat header; everything else — framed
// run documents and pre-framing raw JSON — is legacy.
func sniffFile(path string) (fileKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("runstore: open %s: %w", path, err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	n, _ := f.Read(buf)
	head := buf[:n]
	if i := bytes.IndexByte(head, '\n'); i >= 0 {
		head = head[:i]
	}
	// Cheap containment check on the first line is enough: the header
	// record is tiny and carries its format string verbatim.
	if bytes.Contains(head, []byte(runio.WalksFormat)) {
		return fileLine, nil
	}
	return fileLegacy, nil
}

// Copy streams every walk of src into dst and finalizes dst. It is the
// cross-backend migration path (line → segment and back); the copied
// walks are byte-identical records, so analyses over the two stores
// agree exactly.
func Copy(dst Store, src Store) error {
	cur := src.Iter()
	defer cur.Close()
	for {
		w, err := cur.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return err
		}
		if err := dst.Append(w); err != nil {
			return err
		}
	}
	return dst.Finalize()
}

// walkRecord is the on-disk form of one walk, shared by both backends.
type walkRecord struct {
	Index int           `json:"index"`
	Walk  *crawler.Walk `json:"walk"`
}

// decodeWalk decodes one raw walk record payload.
func decodeWalk(raw []byte) (*crawler.Walk, error) {
	var rec walkRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("runstore: decode walk record: %w", err)
	}
	if rec.Walk == nil {
		return nil, fmt.Errorf("runstore: walk record %d has no walk", rec.Index)
	}
	return rec.Walk, nil
}
