package runstore

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
)

func testWalk(i int) *crawler.Walk {
	return &crawler.Walk{
		Index:  i,
		Seeder: fmt.Sprintf("site-%03d.example", i),
		Steps: []*crawler.Step{
			{Walk: i, Index: 1, Records: map[string]*crawler.CrawlerStep{
				"safari1": {LandedURL: fmt.Sprintf("http://dest-%d.example/", i)},
			}},
		},
	}
}

func testManifest(seed int64) Manifest {
	return Manifest{
		Header:   runio.Header{Seed: seed},
		Crawlers: []string{"safari1", "safari2"},
		Config:   json.RawMessage(`{"walks":5}`),
	}
}

func drain(t *testing.T, st Store) []*crawler.Walk {
	t.Helper()
	cur := st.Iter()
	defer cur.Close()
	var out []*crawler.Walk
	for {
		w, err := cur.Next()
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("cursor: %v", err)
		}
		out = append(out, w)
	}
}

func backends(t *testing.T) map[Backend]string {
	return map[Backend]string{
		BackendLine:    filepath.Join(t.TempDir(), "run.walks"),
		BackendSegment: filepath.Join(t.TempDir(), "run.crumbs"),
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for backend, path := range backends(t) {
		t.Run(string(backend), func(t *testing.T) {
			st, err := Create(path, backend, testManifest(7))
			if err != nil {
				t.Fatal(err)
			}
			// Out-of-order appends: parallel crawls finish out of order.
			for _, i := range []int{2, 0, 4, 1, 3} {
				if err := st.Append(testWalk(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st.Finalize(); err != nil {
				t.Fatal(err)
			}
			if st.Walks() != 5 {
				t.Fatalf("walks = %d, want 5", st.Walks())
			}
			if err := st.Append(testWalk(9)); !errors.Is(err, ErrFinalized) {
				t.Fatalf("append after finalize: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			ro, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer ro.Close()
			m := ro.Manifest()
			if m.Seed != 7 || m.Walks != 5 || len(m.Crawlers) != 2 {
				t.Fatalf("manifest: %+v", m)
			}
			got := drain(t, ro)
			if len(got) != 5 {
				t.Fatalf("cursor walks = %d, want 5", len(got))
			}
			for i, w := range got {
				if !reflect.DeepEqual(w, testWalk(i)) {
					t.Fatalf("walk %d differs: %+v", i, w)
				}
			}
			w3, err := ro.Get(3)
			if err != nil || w3.Seeder != "site-003.example" {
				t.Fatalf("Get(3) = %+v, %v", w3, err)
			}
			if _, err := ro.Get(99); !errors.Is(err, ErrNoWalk) {
				t.Fatalf("Get(99): %v", err)
			}
		})
	}
}

func TestStoreResumeAfterClose(t *testing.T) {
	for backend, path := range backends(t) {
		t.Run(string(backend), func(t *testing.T) {
			st, err := Create(path, backend, testManifest(3))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if err := st.Append(testWalk(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Close without Finalize: a crash-equivalent store.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if st2.Walks() != 3 {
				t.Fatalf("resumed walks = %d, want 3", st2.Walks())
			}
			for i := 3; i < 6; i++ {
				if err := st2.Append(testWalk(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := st2.Finalize(); err != nil {
				t.Fatal(err)
			}
			got := drain(t, st2)
			if len(got) != 6 {
				t.Fatalf("walks after resume = %d, want 6", len(got))
			}
			st2.Close()
		})
	}
}

func TestSegmentSealing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "big.crumbs")
	st, err := Create(dir, BackendSegment, testManifest(5))
	if err != nil {
		t.Fatal(err)
	}
	st.(*segmentStore).segWalks = 4 // tiny segments for the test
	const n = 11
	for i := 0; i < n; i++ {
		if err := st.Append(testWalk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Finalize(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	sealed, _ := filepath.Glob(filepath.Join(dir, "seg-*.sgz"))
	if len(sealed) != 3 {
		t.Fatalf("sealed segments = %d, want 3", len(sealed))
	}
	if open, _ := filepath.Glob(filepath.Join(dir, "seg-*.jsonl")); len(open) != 0 {
		t.Fatalf("unsealed segments left after finalize: %v", open)
	}
	ro, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	got := drain(t, ro)
	if len(got) != n {
		t.Fatalf("walks = %d, want %d", len(got), n)
	}
	for i, w := range got {
		if w.Index != i {
			t.Fatalf("walk %d out of order: index %d", i, w.Index)
		}
	}
}

func TestCrossBackendCopy(t *testing.T) {
	// line → segment → line must preserve every walk byte-for-byte.
	lpath := filepath.Join(t.TempDir(), "src.walks")
	src, err := Create(lpath, BackendLine, testManifest(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := src.Append(testWalk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Finalize(); err != nil {
		t.Fatal(err)
	}

	spath := filepath.Join(t.TempDir(), "mid.crumbs")
	mid, err := Create(spath, BackendSegment, src.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := Copy(mid, src); err != nil {
		t.Fatal(err)
	}
	src.Close()

	back, err := Create(filepath.Join(t.TempDir(), "back.walks"), BackendLine, mid.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	if err := Copy(back, mid); err != nil {
		t.Fatal(err)
	}
	mid.Close()

	a, b := drain(t, back), func() []*crawler.Walk {
		out := make([]*crawler.Walk, 0, 9)
		for i := 0; i < 9; i++ {
			out = append(out, testWalk(i))
		}
		return out
	}()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("walks changed across line → segment → line")
	}
	if m := back.Manifest(); m.Walks != 9 || m.Seed != 11 {
		t.Fatalf("manifest after double copy: %+v", m)
	}
	back.Close()
}

func TestOpenLegacyDocument(t *testing.T) {
	// A legacy single-document run (the deprecated SaveRun format) reads
	// through the same Store interface.
	path := filepath.Join(t.TempDir(), "legacy.json")
	ds := &crawler.Dataset{Seed: 21, Crawlers: []string{"safari1"}}
	for i := 0; i < 4; i++ {
		ds.Walks = append(ds.Walks, testWalk(i))
	}
	doc := legacyDoc{
		Header:  runio.Header{Format: runio.RunFormat, Version: runio.RunVersion, Seed: 21},
		Config:  json.RawMessage(`{"walks":4}`),
		Dataset: ds,
	}
	err := runio.WriteFileAtomic(path, func(w io.Writer) error {
		return runio.WriteDocument(w, doc)
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if m := st.Manifest(); m.Seed != 21 || m.Walks != 4 {
		t.Fatalf("legacy manifest: %+v", m)
	}
	if got := drain(t, st); len(got) != 4 {
		t.Fatalf("legacy walks = %d, want 4", len(got))
	}
	if err := st.Append(testWalk(5)); err == nil {
		t.Fatal("legacy store accepted an append")
	}
}

// TestSegmentDamageMatrix corrupts sealed segments in every way the
// damage taxonomy distinguishes and checks each is detected — never
// silently decoded — and quarantined.
func TestSegmentDamageMatrix(t *testing.T) {
	build := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "dmg.crumbs")
		st, err := Create(dir, BackendSegment, testManifest(5))
		if err != nil {
			t.Fatal(err)
		}
		st.(*segmentStore).segWalks = 4
		for i := 0; i < 8; i++ {
			if err := st.Append(testWalk(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.Finalize(); err != nil {
			t.Fatal(err)
		}
		st.Close()
		return dir
	}
	seg0 := func(dir string) string { return segSealedPath(dir, 0) }

	cases := []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated-gzip", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip-in-gzip", func(t *testing.T, path string) {
			data, _ := os.ReadFile(path)
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"valid-gzip-corrupt-frames", func(t *testing.T, path string) {
			// Re-gzip garbage: decompression succeeds, frame CRCs fail.
			err := runio.WriteFileAtomic(path, func(w io.Writer) error {
				gz := gzip.NewWriter(w)
				if _, werr := gz.Write([]byte("!deadbeef!00000010!{\"not\":\"valid\"}\n")); werr != nil {
					return werr
				}
				return gz.Close()
			})
			if err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := build(t)
			tc.damage(t, seg0(dir))
			st, err := Open(dir)
			if err != nil {
				t.Fatal(err) // index and manifest are intact
			}
			defer st.Close()
			_, gerr := st.Get(0)
			if gerr == nil {
				t.Fatal("damaged segment decoded without error")
			}
			if !errors.Is(gerr, runio.ErrCorrupt) {
				t.Fatalf("damage not classified corrupt: %v", gerr)
			}
			if _, serr := os.Stat(seg0(dir) + ".corrupt"); serr != nil {
				t.Fatalf("damaged segment not quarantined: %v", serr)
			}
			// Undamaged segments stay readable.
			if w, err := st.Get(5); err != nil || w.Index != 5 {
				t.Fatalf("healthy segment unreadable after quarantine: %v", err)
			}
		})
	}
}
