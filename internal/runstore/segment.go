package runstore

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/runio"
)

// Segment backend layout: a directory holding
//
//	manifest.json     framed manifest document, atomically rewritten
//	segments.idx      line file: one record per sealed segment
//	seg-NNNNNN.jsonl  the active (unsealed) segment, a runio.LineFile
//	seg-NNNNNN.sgz    a sealed segment: gzip of the framed jsonl image
//
// Walks append to the active segment — a plain runio.LineFile, so the
// CRC framing, fsync policy and chaos fault hooks all apply unchanged —
// and every segWalks records the segment seals: its bytes are
// re-framed, gzipped and land via atomic rename, the jsonl is removed,
// and the sidecar index gains a {seg, indices} record. A crash between
// any two steps leaves either the jsonl (recovered and re-adopted on
// open, exactly like a checkpoint) or the sealed sgz — never neither.
// Reading is O(one segment) of memory: the index maps a walk to its
// segment, the segment gunzips, and every record's checksum verifies
// before a byte of it is decoded. A segment that fails verification is
// quarantined to "<seg>.corrupt" and surfaces a DamageError, matching
// the line-file damage contract.

// segWalksDefault is how many walks a segment holds before sealing.
const segWalksDefault = 256

// segVersion is bumped when the segment layout changes.
const segVersion = 1

func segHeader(seed int64) runio.Header {
	return runio.Header{Format: runio.SegmentFormat, Version: segVersion, Seed: seed}
}

func segIndexHeader(seed int64) runio.Header {
	return runio.Header{Format: runio.SegmentIndexFormat, Version: segVersion, Seed: seed}
}

// segIndexEntry is one sealed segment in segments.idx.
type segIndexEntry struct {
	Seg     int   `json:"seg"`
	Indices []int `json:"indices"`
}

// segmentStore is the sharded, compressed backend.
type segmentStore struct {
	mu       sync.Mutex
	dir      string
	manifest Manifest
	segWalks int

	index *runio.LineFile // segments.idx, nil when opened read-only is impossible (always open)

	// walkSeg maps every known walk index to its segment number.
	walkSeg map[int]int
	// sealed maps segment number → its walk indices, in append order.
	sealed map[int][]int

	// active is the open, unsealed segment (nil until the first append
	// after open or a seal).
	active     *runio.LineFile
	activeSeg  int
	activeIdx  []int          // indices in append order
	activeRaw  map[int][]byte // raw payloads of the active segment
	nextSeg   int
	finalized bool
	// cache holds the most recently decoded sealed segments. Two slots:
	// a parallel crawl interleaves walk indices across at most a
	// parallelism-sized window, so an index-order scan touches at most
	// two adjacent segments at a time.
	cache      map[int]map[int][]byte
	cacheOrder []int // LRU, most recent last
}

// segCacheSlots bounds the sealed-segment cache.
const segCacheSlots = 2

func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }
func indexPath(dir string) string    { return filepath.Join(dir, "segments.idx") }
func segJSONLPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.jsonl", n))
}
func segSealedPath(dir string, n int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%06d.sgz", n))
}

func writeManifest(dir string, m Manifest) error {
	return runio.WriteFileAtomic(manifestPath(dir), func(w io.Writer) error {
		return runio.WriteDocument(w, m)
	})
}

func readManifest(dir string) (Manifest, error) {
	f, err := os.Open(manifestPath(dir))
	if err != nil {
		return Manifest{}, fmt.Errorf("runstore: %s: %w", dir, err)
	}
	defer f.Close()
	var m Manifest
	want := runio.Header{Format: runio.WalksFormat, Version: lineWalksVersion}
	if err := runio.ReadDocument(f, want, &m); err != nil {
		return Manifest{}, fmt.Errorf("runstore: %s: manifest: %w", dir, err)
	}
	return m, nil
}

func createSegment(path string, m Manifest) (Store, error) {
	if _, err := os.Stat(manifestPath(path)); err == nil {
		return nil, fmt.Errorf("runstore: %s already holds a run", path)
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: create %s: %w", path, err)
	}
	m.Header = runio.Header{Format: runio.WalksFormat, Version: lineWalksVersion, Seed: m.Seed}
	if err := writeManifest(path, m); err != nil {
		return nil, err
	}
	idx, entries, err := runio.OpenLineFile(indexPath(path), segIndexHeader(m.Seed))
	if err != nil {
		return nil, err
	}
	if len(entries) != 0 {
		idx.Close()
		return nil, fmt.Errorf("runstore: %s: index already holds segments", path)
	}
	return &segmentStore{
		dir:      path,
		manifest: m,
		segWalks: segWalksDefault,
		index:    idx,
		walkSeg:  map[int]int{},
		sealed:   map[int][]int{},
	}, nil
}

func openSegment(dir string) (Store, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	idx, entries, err := runio.OpenLineFile(indexPath(dir), segIndexHeader(m.Seed))
	if err != nil {
		return nil, err
	}
	st := &segmentStore{
		dir:      dir,
		manifest: m,
		segWalks: segWalksDefault,
		index:    idx,
		walkSeg:  map[int]int{},
		sealed:   map[int][]int{},
	}
	for _, raw := range entries {
		var e segIndexEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			idx.Close()
			return nil, fmt.Errorf("runstore: %s: decode index record: %w", dir, err)
		}
		st.sealed[e.Seg] = e.Indices
		for _, wi := range e.Indices {
			st.walkSeg[wi] = e.Seg
		}
		if e.Seg >= st.nextSeg {
			st.nextSeg = e.Seg + 1
		}
	}
	// Adopt any unsealed segment a crash left behind: reopen it as the
	// active line file (torn tails recover like any checkpoint) and put
	// its walks back on the map.
	leftover, err := filepath.Glob(filepath.Join(dir, "seg-*.jsonl"))
	if err == nil {
		sort.Strings(leftover)
		for _, p := range leftover {
			var n int
			if _, serr := fmt.Sscanf(filepath.Base(p), "seg-%06d.jsonl", &n); serr != nil {
				continue
			}
			if _, isSealed := st.sealed[n]; isSealed {
				// Sealed and the jsonl still present: the crash landed
				// between rename and remove. The sgz is authoritative.
				os.Remove(p)
				continue
			}
			if err := st.adoptUnsealed(n); err != nil {
				idx.Close()
				return nil, err
			}
		}
	}
	st.finalized = m.Walks > 0 && m.Walks == len(st.walkSeg)
	return st, nil
}

// adoptUnsealed reopens an unsealed segment file for continued appends.
func (st *segmentStore) adoptUnsealed(n int) error {
	lf, entries, err := runio.OpenLineFile(segJSONLPath(st.dir, n), segHeader(st.manifest.Seed))
	if err != nil {
		return err
	}
	if st.active != nil {
		// Two unsealed segments can only mean repeated crashes mid-seal;
		// keep appending to the newest, seal the older one as-is first.
		if err := st.sealActiveLocked(); err != nil {
			lf.Close()
			return err
		}
	}
	st.active = lf
	st.activeSeg = n
	st.activeIdx = nil
	st.activeRaw = map[int][]byte{}
	for _, raw := range entries {
		var rec struct {
			Index int `json:"index"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			lf.Close()
			return fmt.Errorf("runstore: %s: decode walk record: %w", st.dir, err)
		}
		st.activeIdx = append(st.activeIdx, rec.Index)
		st.activeRaw[rec.Index] = raw
		st.walkSeg[rec.Index] = n
	}
	if n >= st.nextSeg {
		st.nextSeg = n + 1
	}
	return nil
}

func (st *segmentStore) Manifest() Manifest {
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.manifest
	if !st.finalized {
		m.Walks = len(st.walkSeg)
	}
	return m
}

func (st *segmentStore) Walks() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.walkSeg)
}

func (st *segmentStore) Append(w *crawler.Walk) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finalized {
		return ErrFinalized
	}
	if st.active == nil {
		lf, entries, err := runio.OpenLineFile(segJSONLPath(st.dir, st.nextSeg), segHeader(st.manifest.Seed))
		if err != nil {
			return err
		}
		if len(entries) != 0 {
			lf.Close()
			return fmt.Errorf("runstore: %s: segment %d not empty", st.dir, st.nextSeg)
		}
		st.active = lf
		st.activeSeg = st.nextSeg
		st.activeIdx = nil
		st.activeRaw = map[int][]byte{}
		st.nextSeg++
	}
	raw, err := json.Marshal(walkRecord{Index: w.Index, Walk: w})
	if err != nil {
		return fmt.Errorf("runstore: encode walk %d: %w", w.Index, err)
	}
	if err := st.active.Append(json.RawMessage(raw)); err != nil {
		return err
	}
	st.activeIdx = append(st.activeIdx, w.Index)
	st.activeRaw[w.Index] = raw
	st.walkSeg[w.Index] = st.activeSeg
	if len(st.activeIdx) >= st.segWalks {
		return st.sealActiveLocked()
	}
	return nil
}

// sealActiveLocked compresses the active segment into its sgz, records
// it in the index, and removes the jsonl. Callers hold mu.
func (st *segmentStore) sealActiveLocked() error {
	if st.active == nil {
		return nil
	}
	jsonl := segJSONLPath(st.dir, st.activeSeg)
	if err := st.active.Close(); err != nil {
		return err
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		return fmt.Errorf("runstore: seal segment %d: %w", st.activeSeg, err)
	}
	err = runio.WriteFileAtomic(segSealedPath(st.dir, st.activeSeg), func(w io.Writer) error {
		gz := gzip.NewWriter(w)
		if _, werr := gz.Write(data); werr != nil {
			return werr
		}
		return gz.Close()
	})
	if err != nil {
		return err
	}
	if err := st.index.Append(segIndexEntry{Seg: st.activeSeg, Indices: st.activeIdx}); err != nil {
		return err
	}
	st.sealed[st.activeSeg] = st.activeIdx
	os.Remove(jsonl)
	st.active = nil
	st.activeIdx = nil
	st.activeRaw = nil
	return nil
}

// loadSealedLocked gunzips and verifies one sealed segment, returning
// its raw payloads by walk index. Damage quarantines the segment file
// and surfaces a DamageError wrapping ErrCorrupt. Callers hold mu.
func (st *segmentStore) loadSealedLocked(n int) (map[int][]byte, error) {
	if walks, ok := st.cache[n]; ok {
		for i, s := range st.cacheOrder {
			if s == n {
				st.cacheOrder = append(append(st.cacheOrder[:i:i], st.cacheOrder[i+1:]...), n)
				break
			}
		}
		return walks, nil
	}
	path := segSealedPath(st.dir, n)
	corrupt := func(err error) (map[int][]byte, error) {
		q := path + ".corrupt"
		if rerr := os.Rename(path, q); rerr != nil { //crumb:allow fsyncpolicy quarantine move of a damaged segment, mirroring runio's own quarantine; not an atomic-replace
			q = ""
		}
		return nil, runio.NewCorruptError(runio.SegmentFormat, path, q)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: segment %d: %w", n, err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return corrupt(err)
	}
	defer gz.Close()
	data, err := io.ReadAll(gz)
	if err != nil {
		return corrupt(err)
	}
	entries, err := runio.Records(data, segHeader(st.manifest.Seed))
	if err != nil {
		// A sealed segment landed via atomic rename, so even a "torn"
		// classification means the bytes were damaged afterwards.
		var de *runio.DamageError
		if errors.As(err, &de) {
			return corrupt(err)
		}
		return nil, err
	}
	walks := make(map[int][]byte, len(entries))
	for _, raw := range entries {
		var rec struct {
			Index int `json:"index"`
		}
		if uerr := json.Unmarshal(raw, &rec); uerr != nil {
			return corrupt(uerr)
		}
		walks[rec.Index] = raw
	}
	if st.cache == nil {
		st.cache = map[int]map[int][]byte{}
	}
	if len(st.cacheOrder) >= segCacheSlots {
		evict := st.cacheOrder[0]
		st.cacheOrder = st.cacheOrder[1:]
		delete(st.cache, evict)
	}
	st.cache[n] = walks
	st.cacheOrder = append(st.cacheOrder, n)
	return walks, nil
}

func (st *segmentStore) Get(idx int) (*crawler.Walk, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	seg, ok := st.walkSeg[idx]
	if !ok {
		return nil, fmt.Errorf("%w: index %d", ErrNoWalk, idx)
	}
	if st.active != nil && seg == st.activeSeg {
		return decodeWalk(st.activeRaw[idx])
	}
	walks, err := st.loadSealedLocked(seg)
	if err != nil {
		return nil, err
	}
	raw, ok := walks[idx]
	if !ok {
		return nil, fmt.Errorf("%w: index %d missing from segment %d", ErrNoWalk, idx, seg)
	}
	return decodeWalk(raw)
}

func (st *segmentStore) sortedIndices() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]int, 0, len(st.walkSeg))
	for i := range st.walkSeg {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func (st *segmentStore) Iter() Cursor {
	return &segmentCursor{st: st, order: st.sortedIndices()}
}

func (st *segmentStore) Finalize() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finalized {
		return nil
	}
	if err := st.sealActiveLocked(); err != nil {
		return err
	}
	if err := st.index.Sync(); err != nil {
		return err
	}
	st.manifest.Walks = len(st.walkSeg)
	if err := writeManifest(st.dir, st.manifest); err != nil {
		return err
	}
	st.finalized = true
	return nil
}

func (st *segmentStore) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	var err error
	if st.active != nil {
		err = st.active.Close()
		st.active = nil
	}
	if cerr := st.index.Close(); err == nil {
		err = cerr
	}
	return err
}

// segmentCursor iterates in walk-index order, reusing the store's
// one-segment cache; consecutive walks usually share a segment, so a
// full scan gunzips each segment once.
type segmentCursor struct {
	st    *segmentStore
	order []int
	pos   int
}

func (c *segmentCursor) Next() (*crawler.Walk, error) {
	if c.pos >= len(c.order) {
		return nil, io.EOF
	}
	idx := c.order[c.pos]
	c.pos++
	return c.st.Get(idx)
}

func (c *segmentCursor) Close() error { return nil }
