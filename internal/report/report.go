// Package report renders CrumbCruncher's results as text tables and bar
// charts: one renderer per table and figure in the paper, plus a combined
// report used by cmd/crumbcruncher and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/stats"
	"crumbcruncher/internal/uid"
)

// Table writes an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// BarChart writes a horizontal ASCII bar chart.
func BarChart(w io.Writer, title string, entries []stats.Entry, width int) {
	if width <= 0 {
		width = 40
	}
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	maxCount, maxKey := 1, 0
	for _, e := range entries {
		if e.Count > maxCount {
			maxCount = e.Count
		}
		if len(e.Key) > maxKey {
			maxKey = len(e.Key)
		}
	}
	for _, e := range entries {
		n := e.Count * width / maxCount
		fmt.Fprintf(w, "%s  %s %d\n", pad(e.Key, maxKey), strings.Repeat("█", n), e.Count)
	}
	fmt.Fprintln(w)
}

// Render writes the complete evaluation report for a run: every table and
// figure from the paper's §5, plus the methodology statistics of §3.
func Render(w io.Writer, r *core.Run) {
	s := r.Analysis.Summarize()
	fmt.Fprintf(w, "CrumbCruncher measurement report (seed %d, %d walks, %d steps)\n\n",
		r.Config.World.Seed, r.Analysis.WalkCount(), r.Analysis.StepCount())

	// Headline (§5).
	fmt.Fprintf(w, "UID smuggling on %.2f%% of unique URL paths (paper: 8.11%%)\n", 100*r.Analysis.SmugglingRate())
	fmt.Fprintf(w, "Bounce tracking without smuggling on %.2f%% (paper: 2.7%%)\n\n", 100*r.Analysis.BounceRate())

	// §3.3 failure rates.
	fr := r.Analysis.FailureRates()
	Table(w, "Crawl failure rates (§3.3)", []string{"Failure", "Measured", "Paper"}, [][]string{
		{"No common element (steps)", pct(fr.NoCommonElement), "7.6%"},
		{"Divergent landing (steps)", pct(fr.Divergent), "1.8%"},
		{"Connection failures (sites)", pct(fr.ConnectError), "3.3%"},
	})

	// Resilience split: the paper's 3.3% treats every connection failure
	// as a lost site; with retries enabled, part of that population is
	// transient and recovered.
	if rs := r.Analysis.Resilience(); rs.SitesRecovered > 0 || rs.RetriedRequests > 0 {
		fmt.Fprintf(w, "Resilience: %d retried requests; %d sites transient-recovered (%s), %d permanently unreachable (%s; the paper's 3.3%% counts both)\n\n",
			rs.RetriedRequests, rs.SitesRecovered, pct(rs.RecoveredRate),
			rs.SitesUnreachable, pct(rs.UnreachableRate))
	}

	// Transport-level failure rate from the network simulator's own
	// request accounting. A re-analysed saved run rebuilds the world
	// without crawling it, so its network has no traffic to report.
	if reqs := r.World.Network().RequestCount(); reqs > 0 {
		fails := r.World.Network().FailureCount()
		fmt.Fprintf(w, "Transport: %d requests, %d failed (%s observed; the paper reports 3.3%% of sites unreachable)\n\n",
			reqs, fails, pct(float64(fails)/float64(reqs)))
	}

	// Table 1.
	buckets := uid.BucketCounts(r.Cases)
	var t1 [][]string
	for _, b := range uid.Buckets {
		t1 = append(t1, []string{string(b), fmt.Sprint(buckets[b])})
	}
	Table(w, "Table 1: crawler combinations where UIDs appeared", []string{"User Profiles", "# Tokens"}, t1)

	// Table 2.
	Table(w, "Table 2: navigation paths and participants", []string{"Metric", "Value", "Paper"}, [][]string{
		{"Unique URL Paths", fmt.Sprint(s.UniqueURLPaths), "10,814"},
		{"Unique URL Paths w/ UID Smuggling", fmt.Sprint(s.UniqueURLPathsSmuggling), "850"},
		{"Unique Domain Paths w/ UID smuggling", fmt.Sprint(s.UniqueDomainPathsSmuggling), "321"},
		{"Unique Redirectors", fmt.Sprint(s.UniqueRedirectors), "214"},
		{"Dedicated Smugglers", fmt.Sprint(s.DedicatedSmugglers), "27"},
		{"Multi-Purpose Smugglers", fmt.Sprint(s.MultiPurposeSmugglers), "187"},
		{"Unique Originators", fmt.Sprint(s.UniqueOriginators), "265"},
		{"Unique Destinations", fmt.Sprint(s.UniqueDestinations), "224"},
	})

	// Table 3.
	var t3 [][]string
	for _, row := range r.Analysis.TopRedirectors(30) {
		host := row.Host
		if row.MultiPurpose {
			host += "*"
		}
		t3 = append(t3, []string{host, fmt.Sprint(row.Count), fmt.Sprintf("%.1f", row.PctDomainPaths)})
	}
	Table(w, "Table 3: most common redirectors (* = multi-purpose)", []string{"Redirector", "Count", "% Domain Paths"}, t3)

	// Figure 4.
	origs, dests := r.Analysis.TopOrganizations(r.Attributor(), 19)
	BarChart(w, "Figure 4a: most common originator organizations", origs, 40)
	BarChart(w, "Figure 4b: most common destination organizations", dests, 40)

	// Figure 5.
	co, cd := r.Analysis.CategoryBreakdown(r.Taxonomy())
	BarChart(w, "Figure 5a: originator categories (registered domains)", sortedEntries(co), 40)
	BarChart(w, "Figure 5b: destination categories (registered domains)", sortedEntries(cd), 40)

	// Figure 6.
	BarChart(w, "Figure 6: third parties receiving UIDs from destination pages", r.Analysis.ThirdPartyReceivers(20), 40)

	// Figure 7.
	var f7 [][]string
	for _, b := range r.Analysis.RedirectorHistogram() {
		f7 = append(f7, []string{
			fmt.Sprint(b.Redirectors),
			fmt.Sprint(b.NoDedicated), fmt.Sprint(b.OneDedicated), fmt.Sprint(b.TwoPlusDedicated),
		})
	}
	Table(w, "Figure 7: redirectors per smuggling URL path", []string{"Redirectors", "No dedicated", "1+ dedicated", "2+ dedicated"}, f7)

	// Figure 8.
	portions := r.Analysis.PathPortions()
	var f8 [][]string
	for _, p := range analysis.Portions {
		pc := portions[p]
		f8 = append(f8, []string{string(p), fmt.Sprint(pc.WithDedicated), fmt.Sprint(pc.WithoutDedicated)})
	}
	Table(w, "Figure 8: UIDs per traversed path portion", []string{"Portion", "Dedicated in path", "No dedicated"}, f8)

	// §3.6 token provenance.
	breakdown := r.Analysis.StorageSourceBreakdown()
	Table(w, "Confirmed UID provenance on the originator (§3.6)", []string{"Source", "UIDs"}, [][]string{
		{string(analysis.SourceCookie), fmt.Sprint(breakdown[analysis.SourceCookie])},
		{string(analysis.SourceLocalStorage), fmt.Sprint(breakdown[analysis.SourceLocalStorage])},
		{string(analysis.SourceQueryOnly), fmt.Sprint(breakdown[analysis.SourceQueryOnly])},
	})

	// §3.7 pipeline accounting.
	Table(w, "Token pipeline (§3.7)", []string{"Stage", "Count", "Paper"}, [][]string{
		{"Cross-context candidates", fmt.Sprint(r.Stats.Candidates), "-"},
		{"Token groups", fmt.Sprint(r.Stats.Groups), "-"},
		{"Discarded: same across users", fmt.Sprint(r.Stats.SameAcrossUsers), "-"},
		{"Discarded: session (repeat crawler)", fmt.Sprint(r.Stats.SessionByRepeat), "-"},
		{"Reached manual review", fmt.Sprint(r.Stats.AfterProgrammatic), "1,581"},
		{"Manually removed", fmt.Sprint(r.Stats.ManuallyRemoved), "577"},
		{"Confirmed UIDs", fmt.Sprint(r.Stats.Final), "~1,004"},
	})

	// §3.7.1 lifetimes.
	lt := uid.ComputeLifetimeStats(r.Cases, r.Lifetimes)
	Table(w, "UID cookie lifetimes (§3.7.1)", []string{"Band", "Measured", "Paper"}, [][]string{
		{"< 90 days", pct(lt.Under90Fraction()), "16%"},
		{"< 30 days", pct(lt.Under30Fraction()), "9%"},
	})

	// §3.5 fingerprinting experiment.
	if exp, err := r.Analysis.FingerprintingExperiment(r.World.Fingerprinters()); err == nil {
		Table(w, "Fingerprinting experiment (§3.5)", []string{"Quantity", "Measured", "Paper"}, [][]string{
			{"Smuggling on fingerprinting sites", pct(exp.OnFingerprinters), "13%"},
			{"Multi-crawler (fingerprinting group)", pct(exp.FPMulti.Value()), "44%"},
			{"Multi-crawler (other group)", pct(exp.NonFPMulti.Value()), "52%"},
			{"Two-proportion Z", fmt.Sprintf("%.2f (p=%.3f)", exp.Z.Z, exp.Z.PValue), "significant"},
		})
	}

	// §5.1/§7.1 blocklist coverage.
	gap := r.DisconnectDomains().MissingFraction(r.Analysis.DedicatedSmugglers())
	blocked := r.EasyList().BlockedFraction(r.Analysis.SmugglingURLs())
	Table(w, "Blocklist coverage (§5.1, §7.1)", []string{"List", "Measured", "Paper"}, [][]string{
		{"Dedicated smugglers missing from Disconnect", pct(gap), "41%"},
		{"Smuggling URLs blocked by EasyList", pct(blocked), "6%"},
	})

	// §7.2 contribution: the blocklist of confirmed UID parameters.
	fmt.Fprintf(w, "Confirmed UID parameter names (%d): %s\n",
		len(r.Analysis.SmugglerParamNames()), strings.Join(r.Analysis.SmugglerParamNames(), ", "))
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

func sortedEntries(m map[string]int) []stats.Entry {
	out := make([]stats.Entry, 0, len(m))
	for k, v := range m {
		out = append(out, stats.Entry{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
