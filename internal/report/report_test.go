package report

import (
	"strings"
	"testing"

	"crumbcruncher/internal/core"
	"crumbcruncher/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, "Title", []string{"A", "LongHeader"}, [][]string{
		{"x", "1"},
		{"yyyyy", "22"},
	})
	out := b.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "LongHeader") {
		t.Fatalf("output missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, underline, header, separator, two rows
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestBarChart(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "Chart", []stats.Entry{{Key: "big", Count: 10}, {Key: "small", Count: 1}}, 10)
	out := b.String()
	if !strings.Contains(out, "██████████ 10") {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "█ 1") {
		t.Fatalf("small bar wrong:\n%s", out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	var b strings.Builder
	BarChart(&b, "", nil, 0) // must not panic or divide by zero
	BarChart(&b, "z", []stats.Entry{{Key: "none", Count: 0}}, 10)
}

func TestRenderFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline render")
	}
	cfg := core.SmallConfig()
	cfg.Walks = 40
	r, err := core.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Render(&b, r)
	out := b.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3",
		"Figure 4a", "Figure 5a", "Figure 6", "Figure 7", "Figure 8",
		"UID smuggling on", "Crawl failure rates",
		"Token pipeline", "lifetimes", "Blocklist coverage",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
