// Package serve is the resident multi-tenant service shape of
// CrumbCruncher: a long-lived process accepting crawl and reanalysis
// jobs over an HTTP/JSON API, executing them on a bounded worker pool
// fed by a priority queue, and serving their results, telemetry and
// persisted artifacts. Determinism survives multi-tenancy by
// construction: every job runs the ordinary core pipeline over a
// private world fork (see worldCache), so N concurrent jobs produce
// metrics byte-identical to the same jobs run solo.
//
// Timing discipline: run results are functions of the virtual clock,
// but a server also needs real timestamps (job queue/start/finish, rate
// limiting). Those route exclusively through telemetry.Stopwatch — the
// repo's one sanctioned wall-clock origin — and are reported as
// milliseconds since server start, never absolute times.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"crumbcruncher"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/serve/queue"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// Options configures a Server. The zero value is usable: 2 workers, a
// 64-deep queue, no admission limiting, no run store.
type Options struct {
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueCapacity bounds the job queue (default 64; < 0: unbounded).
	QueueCapacity int
	// AdmitBurst/AdmitPerSecond configure token-bucket admission on
	// POST /jobs. Zero burst disables limiting.
	AdmitBurst     int
	AdmitPerSecond float64
	// StoreDir, when set, persists completed runs and per-job
	// checkpoints under this directory.
	StoreDir string
	// SpanCapacity sizes each job's span tracer ring
	// (default telemetry.DefaultSpanCapacity).
	SpanCapacity int
	// RetryAfterSeconds is the Retry-After header on 503/429 responses
	// (default 5).
	RetryAfterSeconds int
	// Hooks are test-only chaos points; zero in production.
	Hooks Hooks
}

// Hooks are optional callbacks the chaos harness uses to reach inside
// the worker pool deterministically. All fields may be nil.
type Hooks struct {
	// BeforeJob runs on the worker goroutine just before a job's
	// pipeline starts. A panic here exercises the worker's panic
	// isolation exactly like a panic inside the pipeline would.
	BeforeJob func(jobID string, spec JobSpec)
}

// Server executes jobs and serves the HTTP API. Create with New, mount
// Handler, and call Drain on shutdown.
type Server struct {
	opts   Options
	watch  telemetry.Stopwatch
	tel    *telemetry.Telemetry // server-level registry (serve.* metrics)
	queue  *queue.Queue
	bucket *queue.Bucket
	cache  *worldCache
	store  *Store // nil without StoreDir
	mux    *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for GET /jobs
	nextID int

	draining atomic.Bool
	busy     atomic.Int64
	wg       sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueCapacity == 0 {
		opts.QueueCapacity = 64
	}
	if opts.SpanCapacity <= 0 {
		opts.SpanCapacity = telemetry.DefaultSpanCapacity
	}
	if opts.RetryAfterSeconds <= 0 {
		opts.RetryAfterSeconds = 5
	}
	s := &Server{
		opts:  opts,
		watch: telemetry.StartStopwatch(),
		tel:   telemetry.New(nil, 1),
		queue: queue.New(opts.QueueCapacity),
		jobs:  make(map[string]*Job),
	}
	s.bucket = queue.NewBucket(opts.AdmitBurst, opts.AdmitPerSecond)
	s.cache = newWorldCache(s.tel)
	if opts.StoreDir != "" {
		store, err := OpenStore(opts.StoreDir, s.tel)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// uptimeMs is the server's age in milliseconds — the only wall-clock
// quantity the API ever reports.
func (s *Server) uptimeMs() int64 { return s.watch.ElapsedMicros() / 1000 }

// Drain performs graceful shutdown: new submissions get 503 +
// Retry-After, queued jobs are canceled, in-flight jobs are interrupted
// (their pipelines drain and their checkpoints record completed walks
// for resume), and workers exit. It returns when the pool is idle or
// ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for _, v := range s.queue.Drain() {
		v.(*Job).markCanceled(true, s.uptimeMs())
	}
	for _, j := range s.snapshotJobs() {
		j.markCanceled(true, s.uptimeMs())
	}
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		if s.store != nil {
			return s.store.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// snapshotJobs returns every known job in submission order.
func (s *Server) snapshotJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	return jobs
}

// --- Workers ----------------------------------------------------------------

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		v, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.runJob(v.(*Job))
	}
}

func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if j.Spec.TimeoutMs > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(j.Spec.TimeoutMs)*time.Millisecond)
		defer tcancel()
	}
	if !j.begin(cancel, s.uptimeMs()) {
		return // canceled while queued
	}
	s.busy.Add(1)
	defer s.busy.Add(-1)

	run, err := s.executeGuarded(ctx, j)
	now := s.uptimeMs()
	if err != nil {
		state := StateFailed
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			// The job's own deadline fired: a failure with a timeout
			// cause, not a cancellation.
			err = fmt.Errorf("serve: job timed out after %dms: %w", j.Spec.TimeoutMs, err)
		case ctx.Err() != nil:
			// The pipeline drained after cancellation: a server drain
			// leaves a resumable job, an explicit DELETE a canceled one.
			state = StateCanceled
			j.mu.Lock()
			if j.drainedInRun {
				state = StateInterrupted
			}
			j.mu.Unlock()
		}
		s.tel.Counter("serve.jobs_" + state).Inc()
		j.finish(state, err.Error(), now)
		return
	}

	var metrics, report bytes.Buffer
	if err := crumbcruncher.WriteMetricsJSON(&metrics, run); err != nil {
		j.finish(StateFailed, err.Error(), now)
		return
	}
	crumbcruncher.WriteReport(&report, run)
	runID := ""
	if s.store != nil && j.Spec.Kind == KindCrawl {
		entry, err := s.store.Save(j.ID, run, j.configHash, now)
		if err != nil {
			j.finish(StateFailed, err.Error(), s.uptimeMs())
			return
		}
		runID = entry.ID
	}
	j.setResults(metrics.Bytes(), report.Bytes(), runID)
	s.tel.Counter("serve.jobs_done").Inc()
	j.finish(StateDone, "", s.uptimeMs())
}

// executeGuarded is execute behind a recover barrier: a panicking job —
// a poisoned config, a bug in a pipeline stage — lands in state failed
// with the panic value and stack in the job record, and the worker (and
// daemon) keep serving.
func (s *Server) executeGuarded(ctx context.Context, j *Job) (run *core.Run, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.tel.Counter("serve.jobs_panicked").Inc()
			run, err = nil, fmt.Errorf("serve: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	if hook := s.opts.Hooks.BeforeJob; hook != nil {
		hook(j.ID, j.Spec)
	}
	return s.execute(ctx, j)
}

// execute runs the job's pipeline under its private telemetry handle.
func (s *Server) execute(ctx context.Context, j *Job) (*core.Run, error) {
	jt := telemetry.New(nil, s.opts.SpanCapacity)
	j.mu.Lock()
	j.tel = jt
	cfg := j.cfg
	j.mu.Unlock()

	if j.Spec.Kind == KindReanalyze {
		return s.reanalyze(ctx, j, jt)
	}

	cfg.Telemetry = jt
	cfg.OnProgress = j.setProgress
	var cp *crumbcruncher.Checkpoint
	if s.store != nil && !j.Spec.NoCheckpoint {
		path := s.store.CheckpointPath(j.ID)
		var err error
		cp, err = crumbcruncher.OpenCheckpointTel(path, cfg.World.Seed, s.tel)
		if errors.Is(err, runio.ErrCorrupt) {
			// The damaged checkpoint is quarantined; the job restarts
			// from an empty one rather than trusting corrupt walks.
			cp, err = crumbcruncher.OpenCheckpointTel(path, cfg.World.Seed, s.tel)
		}
		if err != nil {
			return nil, err
		}
		cfg.Checkpoint = cp
		j.mu.Lock()
		j.checkpoint = path
		j.mu.Unlock()
	}
	world, hit, err := s.cache.Fork(j.configHash, cfg.World)
	if err != nil {
		cp.Close() //nolint:errcheck // job is already failing
		return nil, err
	}
	j.mu.Lock()
	j.cacheHit = hit
	j.mu.Unlock()
	run, err := core.ExecuteInWorld(ctx, cfg, world)
	// A checkpoint that cannot sync its recorded walks is a durability
	// failure even when the run itself succeeded: surface it.
	if cerr := cp.Close(); cerr != nil && err == nil {
		return nil, fmt.Errorf("serve: checkpoint close: %w", cerr)
	}
	return run, err
}

// reanalyze re-runs the post-crawl pipeline over a stored run, walk by
// walk through the store's cursor — the decoded dataset is never
// resident all at once. The world is rebuilt (or fetched) through the
// same cache the crawl used, keyed by the stored run's own
// configuration hash.
func (s *Server) reanalyze(ctx context.Context, j *Job, jt *telemetry.Telemetry) (*core.Run, error) {
	if s.store == nil {
		return nil, errors.New("serve: reanalysis needs a run store (-store)")
	}
	entry, ok := s.store.Lookup(j.Spec.RunID)
	if !ok {
		return nil, fmt.Errorf("serve: unknown run %q", j.Spec.RunID)
	}
	st, err := crumbcruncher.OpenRunStore(s.store.RunPath(entry))
	if err != nil {
		return nil, err
	}
	var cfg core.Config
	if m := st.Manifest(); len(m.Config) > 0 {
		if err := json.Unmarshal(m.Config, &cfg); err != nil {
			st.Close() //nolint:errcheck // job is already failing
			return nil, fmt.Errorf("serve: stored config: %w", err)
		}
	}
	if j.Spec.Parallelism > 0 {
		cfg.Parallelism = j.Spec.Parallelism
	}
	cfg.Telemetry = jt
	hash := cfg.Hash()
	j.mu.Lock()
	j.cfg = cfg
	j.configHash = hash
	j.mu.Unlock()
	world, hit, err := s.cache.Fork(hash, cfg.World)
	if err != nil {
		st.Close() //nolint:errcheck // job is already failing
		return nil, err
	}
	j.mu.Lock()
	j.cacheHit = hit
	j.mu.Unlock()
	run, err := core.AnalyzeStore(ctx, cfg, world, st)
	// Closing releases the store's file handles; the run's lazy walk
	// replay (figures, referer scans) reads the store's in-memory or
	// sealed bytes, which outlive the handles.
	if cerr := st.Close(); cerr != nil && err == nil {
		return nil, fmt.Errorf("serve: close run store: %w", cerr)
	}
	return run, err
}

// --- HTTP API ---------------------------------------------------------------

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /jobs/{id}/metrics", s.handleJobMetrics)
	s.mux.HandleFunc("GET /jobs/{id}/report", s.handleJobReport)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /runs", s.handleRunList)
	s.mux.HandleFunc("GET /runs/{id}", s.handleRunFetch)
	s.mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) unavailable(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.opts.RetryAfterSeconds))
	writeError(w, code, msg)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.bucket.Take() {
		s.tel.Counter("serve.admission_rejected").Inc()
		s.unavailable(w, http.StatusTooManyRequests, "admission rate exceeded")
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	cfg, err := spec.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cfg.World.NumSites <= 0 {
		// BuildWorld substitutes the default world for a zero config;
		// make that substitution explicit here so the cache key, the
		// built world and the job's reported seed all agree.
		cfg.World = web.DefaultConfig()
	}
	if spec.Kind == KindReanalyze && s.store == nil {
		writeError(w, http.StatusBadRequest, "reanalysis needs a run store (-store)")
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%06d", s.nextID)
	s.mu.Unlock()
	j := newJob(id, spec, cfg, s.uptimeMs())

	if err := s.queue.Push(j, spec.Priority); err != nil {
		s.tel.Counter("serve.queue_rejected").Inc()
		s.unavailable(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.tel.Counter("serve.jobs_submitted").Inc()
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
	}
	return j
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	body := j.Metrics()
	if body == nil {
		writeError(w, http.StatusConflict, "job is "+j.State()+", metrics need state done")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body) //nolint:errcheck
}

func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	body := j.Report()
	if body == nil {
		writeError(w, http.StatusConflict, "job is "+j.State()+", report needs state done")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(body) //nolint:errcheck
}

func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	tel := j.Telemetry()
	if tel == nil {
		writeError(w, http.StatusConflict, "job has not started")
		return
	}
	if r.URL.Query().Get("summary") != "" {
		writeJSON(w, http.StatusOK, telemetry.Summarize(tel.Tracer().Spans(), 10))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	tel.Tracer().WriteJSONL(w) //nolint:errcheck
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.markCanceled(false, s.uptimeMs())
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusOK, []RunEntry{})
		return
	}
	writeJSON(w, http.StatusOK, s.store.List())
}

func (s *Server) handleRunFetch(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeError(w, http.StatusNotFound, "no run store configured")
		return
	}
	entry, ok := s.store.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run")
		return
	}
	// Stored runs live behind the RunStore codec (line, segment or
	// legacy backend); clients get one checksum-verified JSON document
	// in the stable single-document shape regardless of the backend.
	st, err := crumbcruncher.OpenRunStore(s.store.RunPath(entry))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	defer st.Close() //nolint:errcheck // read-only handle
	m := st.Manifest()
	doc := struct {
		runio.Header
		Config     json.RawMessage        `json:"config,omitempty"`
		Provenance json.RawMessage        `json:"provenance,omitempty"`
		Dataset    *crumbcruncher.Dataset `json:"dataset"`
	}{
		Header:     runio.Header{Format: runio.RunFormat, Version: runio.RunVersion, Seed: m.Seed},
		Config:     m.Config,
		Provenance: m.Provenance,
		Dataset:    &crumbcruncher.Dataset{Seed: m.Seed, Crawlers: m.Crawlers},
	}
	cur := st.Iter()
	defer cur.Close() //nolint:errcheck // read-only cursor
	for {
		walk, err := cur.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		doc.Dataset.Walks = append(doc.Dataset.Walks, walk)
	}
	writeJSON(w, http.StatusOK, doc)
}

// debugVars is the GET /debug/vars payload: live queue/worker/job
// gauges, the server-level metrics registry, and per-job span
// summaries for every job that has run.
type debugVars struct {
	UptimeMs       int64                             `json:"uptime_ms"`
	Draining       bool                              `json:"draining"`
	Workers        int                               `json:"workers"`
	WorkersBusy    int64                             `json:"workers_busy"`
	QueueDepth     int                               `json:"queue_depth"`
	WorldCacheSize int                               `json:"world_cache_size"`
	Jobs           map[string]int                    `json:"jobs"`
	Metrics        telemetry.Snapshot                `json:"metrics"`
	JobSpans       map[string]telemetry.TraceSummary `json:"job_spans,omitempty"`
}

func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	v := debugVars{
		UptimeMs:       s.uptimeMs(),
		Draining:       s.draining.Load(),
		Workers:        s.opts.Workers,
		WorkersBusy:    s.busy.Load(),
		QueueDepth:     s.queue.Len(),
		WorldCacheSize: s.cache.Len(),
		Jobs:           make(map[string]int),
		Metrics:        s.tel.Registry().Snapshot(),
		JobSpans:       make(map[string]telemetry.TraceSummary),
	}
	for _, j := range s.snapshotJobs() {
		v.Jobs[j.State()]++
		if tel := j.Telemetry(); tel != nil {
			v.JobSpans[j.ID] = telemetry.Summarize(tel.Tracer().Spans(), 3)
		}
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}
