package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// TestJobPanicIsolated: a panicking job lands in state failed with the
// panic and stack in the record, and the worker keeps serving jobs.
func TestJobPanicIsolated(t *testing.T) {
	srv, err := New(Options{Workers: 1, Hooks: Hooks{
		BeforeJob: func(jobID string, spec JobSpec) {
			if spec.Seed == 666 {
				panic("chaos: job panic point")
			}
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bad := postJob(t, ts.URL, `{"small":true,"seed":666,"walks":4}`)
	st := waitState(t, ts.URL, bad.ID)
	if st.State != StateFailed {
		t.Fatalf("panicked job state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "job panicked") || !strings.Contains(st.Error, "chaos: job panic point") {
		t.Fatalf("panic cause missing from job record: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("stack missing from job record: %q", st.Error)
	}

	// The daemon survived: the same worker completes the next job.
	good := postJob(t, ts.URL, `{"small":true,"seed":7,"walks":4}`)
	if st := waitState(t, ts.URL, good.ID); st.State != StateDone {
		t.Fatalf("job after panic: state %s (%s)", st.State, st.Error)
	}

	var vars struct {
		Metrics telemetry.Snapshot `json:"metrics"`
	}
	getJSON(t, ts.URL+"/debug/vars", &vars)
	if n := vars.Metrics.Counters["serve.jobs_panicked"]; n != 1 {
		t.Fatalf("serve.jobs_panicked = %d, want 1", n)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWorldCachePanicEvictsKey: a panic inside the world build fails
// the building job, releases any waiters with an error, evicts the key,
// and lets the next job rebuild successfully.
func TestWorldCachePanicEvictsKey(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := true
	srv.cache.buildFn = func(wc web.Config) *web.World {
		if boom {
			boom = false
			panic("chaos: world build panic")
		}
		return web.BuildWorld(wc)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postJob(t, ts.URL, `{"small":true,"seed":21,"walks":4}`)
	st := waitState(t, ts.URL, first.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "world build panic") {
		t.Fatalf("building job: state %s (%s)", st.State, st.Error)
	}
	if srv.cache.Len() != 0 {
		t.Fatalf("failed build left %d cache entries, want 0 (evicted)", srv.cache.Len())
	}

	// Same config hash, same key: the retry rebuilds instead of
	// inheriting the wedge.
	second := postJob(t, ts.URL, `{"small":true,"seed":21,"walks":4}`)
	if st := waitState(t, ts.URL, second.ID); st.State != StateDone {
		t.Fatalf("retry after build panic: state %s (%s)", st.State, st.Error)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobTimeout: a job still running past its timeout_ms fails with a
// timeout cause, not a cancellation.
func TestJobTimeout(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A full-size world (400 sites, 5000 walks) cannot finish in 1ms.
	job := postJob(t, ts.URL, `{"seed":3,"timeout_ms":1}`)
	st := waitState(t, ts.URL, job.ID)
	if st.State != StateFailed {
		t.Fatalf("timed-out job state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "timed out after 1ms") {
		t.Fatalf("timeout cause missing: %q", st.Error)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBootRepair: a server booting on a damaged store heals it —
// a corrupt index is quarantined and rebuilt from salvageable records,
// entries whose run files are gone are dropped, and the surviving runs
// stay listable and reanalyzable.
func TestStoreBootRepair(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	seedRun := func(seed int) Status {
		job := postJob(t, ts.URL, `{"small":true,"seed":`+string(rune('0'+seed))+`,"walks":6}`)
		if st := waitState(t, ts.URL, job.ID); st.State != StateDone {
			t.Fatalf("seed job: %s (%s)", st.State, st.Error)
		}
		return job
	}
	keep := seedRun(1)
	corrupted := seedRun(2)
	missing := seedRun(3)
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Damage: flip a byte inside one run's index entry (mid-file
	// corruption) and delete another run's document outright.
	if err := os.Remove(filepath.Join(dir, "run-"+missing.ID+".json")); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "index.jsonl")
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the third line — the corrupted run's index
	// entry (line one is the header, line two the kept run).
	nl, seen := 0, 0
	for i, b := range data {
		if b == '\n' {
			seen++
			if seen == 2 {
				nl = i
				break
			}
		}
	}
	data[nl+1+25] ^= 0x04
	if err := os.WriteFile(idxPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = corrupted

	srv2, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	var runs []RunEntry
	getJSON(t, ts2.URL+"/runs", &runs)
	if len(runs) != 1 || runs[0].ID != keep.ID {
		t.Fatalf("repaired store lists %+v, want only %s", runs, keep.ID)
	}
	// The quarantined index is preserved for forensics; the live index
	// was rewritten clean, so a third boot sees no damage.
	if _, err := os.Stat(idxPath + ".corrupt"); err != nil {
		t.Fatalf("quarantined index missing: %v", err)
	}
	reg := srv2.tel.Registry().Snapshot()
	if reg.Counters["runio.quarantined_files"] == 0 {
		t.Fatal("quarantine not counted in telemetry")
	}
	if reg.Counters["serve.store_dropped_runs"] == 0 {
		t.Fatal("dropped run not counted in telemetry")
	}

	// The surviving run still reanalyzes: its document verifies.
	re := postJob(t, ts2.URL, `{"kind":"reanalyze","run_id":"`+keep.ID+`"}`)
	if st := waitState(t, ts2.URL, re.ID); st.State != StateDone {
		t.Fatalf("reanalyze after repair: %s (%s)", st.State, st.Error)
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv3, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatalf("third boot on repaired store: %v", err)
	}
	if err := srv3.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRunFetchServesVerifiedPayload: GET /runs/{id} returns the framed
// document's raw JSON payload, not the frame line.
func TestRunFetchServesVerifiedPayload(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	job := postJob(t, ts.URL, `{"small":true,"seed":41,"walks":4}`)
	if st := waitState(t, ts.URL, job.ID); st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	body := fetchBody(t, ts.URL+"/runs/"+job.ID)
	if len(body) == 0 || body[0] != '{' {
		t.Fatalf("run fetch starts with %q, want raw JSON", body[:1])
	}
	var doc struct {
		Format string `json:"format"`
		Seed   int64  `json:"seed"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("run fetch is not valid JSON: %v", err)
	}
	if doc.Format != runio.RunFormat || doc.Seed != 41 {
		t.Fatalf("run fetch decoded %+v", doc)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
