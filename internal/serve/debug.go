package serve

import (
	"net"
	"net/http"
	"time"
)

// StartDebug binds a debug/profiling HTTP listener synchronously and
// serves handler (nil: http.DefaultServeMux, where net/http/pprof
// registers) on a background goroutine. Binding up front means a bad
// -pprof address is a startup error the caller can report before any
// work begins, instead of a log line racing a run already underway —
// and the returned stop func gives the listener the shutdown path a
// bare http.ListenAndServe goroutine never had. The bound address is
// returned so callers using ":0" can log the real port.
func StartDebug(addr string, handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler: handler,
		// Debug listeners face operators, not the internet, but a stuck
		// client should still not pin a connection forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns non-nil after Close
	stop := func() { srv.Close() }
	return ln.Addr().String(), stop, nil
}
