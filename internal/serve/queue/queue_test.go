package queue

import (
	"sync"
	"testing"
)

// TestPriorityThenFIFO pins the ordering contract: higher priority pops
// first, and within a priority band items pop in admission order.
func TestPriorityThenFIFO(t *testing.T) {
	q := New(0)
	for i, tc := range []struct {
		v string
		p int
	}{
		{"low-a", 0}, {"high-a", 5}, {"low-b", 0}, {"high-b", 5}, {"mid", 3},
	} {
		if err := q.Push(tc.v, tc.p); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	want := []string{"high-a", "high-b", "mid", "low-a", "low-b"}
	for i, w := range want {
		v, ok := q.Pop()
		if !ok || v.(string) != w {
			t.Fatalf("pop %d = %v, %v; want %q", i, v, ok, w)
		}
	}
}

// TestBoundedPush pins the backpressure contract: a full queue rejects
// with ErrFull instead of blocking, and draining one slot re-admits.
func TestBoundedPush(t *testing.T) {
	q := New(2)
	if err := q.Push(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(3, 0); err != ErrFull {
		t.Fatalf("push over capacity = %v, want ErrFull", err)
	}
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.Push(3, 0); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

// TestCloseUnblocksPop pins shutdown: a blocked Pop returns !ok after
// Close, and Push fails with ErrClosed.
func TestCloseUnblocksPop(t *testing.T) {
	q := New(0)
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	q.Close()
	if ok := <-done; ok {
		t.Fatal("Pop on closed empty queue reported ok")
	}
	if err := q.Push(1, 0); err != ErrClosed {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
}

// TestDrainReturnsRemaining pins graceful drain: queued items come back
// in pop order for cancellation, and the queue is closed afterwards.
func TestDrainReturnsRemaining(t *testing.T) {
	q := New(0)
	q.Push("a", 0)
	q.Push("b", 2)
	q.Push("c", 0)
	got := q.Drain()
	if len(got) != 3 || got[0] != "b" || got[1] != "a" || got[2] != "c" {
		t.Fatalf("drain = %v", got)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop after drain reported ok")
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
}

// TestConcurrentPushPop exercises the queue under -race: every pushed
// item is popped exactly once across competing consumers.
func TestConcurrentPushPop(t *testing.T) {
	const n = 200
	q := New(0)
	var seen sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Pop()
				if !ok {
					return
				}
				if _, dup := seen.LoadOrStore(v.(int), true); dup {
					t.Errorf("item %v popped twice", v)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := q.Push(i, i%3); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	wg.Wait()
	count := 0
	seen.Range(func(any, any) bool { count++; return true })
	if count != n {
		t.Fatalf("popped %d distinct items, want %d", count, n)
	}
}

// TestBucket pins admission limiting: a fresh bucket admits its burst
// capacity then rejects, and a nil bucket admits everything.
func TestBucket(t *testing.T) {
	b := NewBucket(3, 0.000001) // refill slow enough to be irrelevant
	for i := 0; i < 3; i++ {
		if !b.Take() {
			t.Fatalf("take %d rejected within burst", i)
		}
	}
	if b.Take() {
		t.Fatal("take beyond burst admitted")
	}

	var unlimited *Bucket
	for i := 0; i < 100; i++ {
		if !unlimited.Take() {
			t.Fatal("nil bucket rejected")
		}
	}
	if NewBucket(0, 5) != nil || NewBucket(5, 0) != nil {
		t.Fatal("degenerate bucket parameters should disable limiting")
	}
}
