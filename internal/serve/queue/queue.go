// Package queue provides the serve layer's admission machinery: a
// bounded priority queue with FIFO ordering inside each priority band,
// and a token bucket that rate-limits job admission. Both are plain
// synchronization primitives — they carry opaque payloads and know
// nothing about jobs, so they are testable in isolation and reusable
// for any future work class the server grows.
package queue

import (
	"container/heap"
	"errors"
	"sync"

	"crumbcruncher/internal/telemetry"
)

var (
	// ErrFull is returned by Push when the queue is at capacity. The
	// server maps it to 503 + Retry-After: backpressure, not data loss.
	ErrFull = errors.New("queue: full")
	// ErrClosed is returned by Push after Close; Pop drains what
	// remains and then reports !ok.
	ErrClosed = errors.New("queue: closed")
)

// item is one queued payload plus its ordering key.
type item struct {
	value    any
	priority int
	seq      uint64 // admission order, breaks ties FIFO within a band
}

// Queue is a bounded, closeable priority queue. Higher Priority values
// pop first; equal priorities pop in admission order. All methods are
// safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	notEmpty *sync.Cond
	items    pqueue
	capacity int
	nextSeq  uint64
	closed   bool
}

// New returns a queue holding at most capacity items; capacity <= 0
// means unbounded.
func New(capacity int) *Queue {
	q := &Queue{capacity: capacity}
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Push enqueues v at the given priority. It never blocks: a full queue
// returns ErrFull so the caller can surface backpressure immediately.
func (q *Queue) Push(v any, priority int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.capacity > 0 && q.items.Len() >= q.capacity {
		return ErrFull
	}
	heap.Push(&q.items, &item{value: v, priority: priority, seq: q.nextSeq})
	q.nextSeq++
	q.notEmpty.Signal()
	return nil
}

// Pop blocks until an item is available or the queue is closed and
// empty. It returns (value, true) for an item and (nil, false) once
// the queue is closed with nothing left to drain.
func (q *Queue) Pop() (any, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.items.Len() == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.items.Len() == 0 {
		return nil, false
	}
	it := heap.Pop(&q.items).(*item)
	return it.value, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.items.Len()
}

// Close marks the queue closed: Push fails, and blocked Pops return
// once remaining items are drained.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notEmpty.Broadcast()
}

// Drain closes the queue and removes every queued item, returning them
// in pop order so the caller can mark them canceled. Workers blocked in
// Pop wake up and observe the closed, empty queue.
func (q *Queue) Drain() []any {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	out := make([]any, 0, q.items.Len())
	for q.items.Len() > 0 {
		out = append(out, heap.Pop(&q.items).(*item).value)
	}
	q.notEmpty.Broadcast()
	return out
}

// pqueue implements heap.Interface: max-priority first, then FIFO.
type pqueue []*item

func (p pqueue) Len() int { return len(p) }
func (p pqueue) Less(i, j int) bool {
	if p[i].priority != p[j].priority {
		return p[i].priority > p[j].priority
	}
	return p[i].seq < p[j].seq
}
func (p pqueue) Swap(i, j int) { p[i], p[j] = p[j], p[i] }
func (p *pqueue) Push(x any)   { *p = append(*p, x.(*item)) }
func (p *pqueue) Pop() any {
	old := *p
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*p = old[:n-1]
	return it
}

// Bucket is a token-bucket admission limiter. Refill is computed lazily
// from a telemetry.Stopwatch — the repo's one sanctioned wall-clock
// origin — so the serve tree stays clean under the wallclock analyzer.
// A nil *Bucket admits everything.
type Bucket struct {
	mu        sync.Mutex
	watch     telemetry.Stopwatch
	lastMicro int64   // stopwatch reading at the last refill
	tokens    float64 // current balance, <= capacity
	capacity  float64
	perSecond float64
}

// NewBucket returns a bucket holding at most capacity tokens, refilled
// at perSecond tokens per second and starting full. A nil bucket (or
// perSecond <= 0) disables limiting.
func NewBucket(capacity int, perSecond float64) *Bucket {
	if capacity <= 0 || perSecond <= 0 {
		return nil
	}
	return &Bucket{
		watch:     telemetry.StartStopwatch(),
		tokens:    float64(capacity),
		capacity:  float64(capacity),
		perSecond: perSecond,
	}
}

// Take consumes one token if available, reporting whether admission
// succeeded. It never blocks.
func (b *Bucket) Take() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.watch.ElapsedMicros()
	b.tokens += float64(now-b.lastMicro) / 1e6 * b.perSecond
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.lastMicro = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
