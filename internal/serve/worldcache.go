package serve

import (
	"fmt"
	"runtime/debug"
	"sync"

	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// worldCache shares immutable world templates between jobs with the
// same configuration hash. The cached template is built once (guarded
// by a per-entry ready channel so concurrent first arrivals build
// exactly one world and latecomers block on it, not on the whole cache)
// and is never crawled itself: every job receives template.Fork(), a
// cheap copy with fresh mutable state (network, clock, visit counts)
// over the shared immutable structure. That split is what makes
// multi-tenancy deterministic — N concurrent jobs cannot perturb each
// other through the world because they never touch shared mutable
// state.
//
// Panic isolation: a build that panics must not wedge every job that
// hashes to the same key. The builder records the failure, evicts the
// key — so the next job retries the build instead of inheriting a nil
// world — closes the ready channel to release the waiters, and
// re-panics so its own job fails through the worker's recover barrier.
// Waiters see a build error, not a hang.
//
// The key is core.Config.Hash(), which normalizes scheduling knobs
// away, so two jobs differing only in Parallelism or telemetry wiring
// share one template. Hashing the full config (not just Config.World)
// is deliberately conservative: jobs differing in, say, walk count
// rebuild an identical world under a second key, trading a little
// memory for a key that provably identifies byte-identical runs.
type worldCache struct {
	mu      sync.Mutex
	entries map[string]*worldCacheEntry
	hits    *telemetry.Counter
	misses  *telemetry.Counter
	// buildFn builds a template (web.BuildWorld in production; tests
	// substitute panicking builders to exercise the isolation).
	buildFn func(web.Config) *web.World
}

type worldCacheEntry struct {
	ready chan struct{} // closed when world/err are final
	world *web.World
	err   error
}

func newWorldCache(tel *telemetry.Telemetry) *worldCache {
	return &worldCache{
		entries: make(map[string]*worldCacheEntry),
		hits:    tel.Counter("serve.world_cache_hits"),
		misses:  tel.Counter("serve.world_cache_misses"),
		buildFn: web.BuildWorld,
	}
}

// Fork returns a fresh fork of the template for hash, building the
// template from wc on first use, and reports whether the template was
// already cached. If the build (in this or a concurrent job) panicked,
// Fork returns the build error; the key has already been evicted, so a
// later job retries the build.
func (c *worldCache) Fork(hash string, wc web.Config) (*web.World, bool, error) {
	c.mu.Lock()
	e, hit := c.entries[hash]
	if !hit {
		e = &worldCacheEntry{ready: make(chan struct{})}
		c.entries[hash] = e
	}
	c.mu.Unlock()

	if hit {
		c.hits.Inc()
		<-e.ready
	} else {
		c.misses.Inc()
		c.build(hash, e, wc)
	}
	if e.err != nil {
		return nil, hit, e.err
	}
	return e.world.Fork(), hit, nil
}

// build constructs the entry's template, converting a builder panic
// into an eviction + recorded error before re-panicking.
func (c *worldCache) build(hash string, e *worldCacheEntry, wc web.Config) {
	defer close(e.ready)
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("serve: world build panicked: %v\n%s", r, debug.Stack())
			c.mu.Lock()
			delete(c.entries, hash) // next job retries instead of inheriting the failure
			c.mu.Unlock()
			panic(r) // fail this job through the worker's recover barrier
		}
	}()
	e.world = c.buildFn(wc)
}

// Len reports the number of cached templates.
func (c *worldCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
