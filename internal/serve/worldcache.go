package serve

import (
	"sync"

	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/web"
)

// worldCache shares immutable world templates between jobs with the
// same configuration hash. The cached template is built once (guarded
// by a per-entry sync.Once so concurrent first arrivals build exactly
// one world and latecomers block on it, not on the whole cache) and is
// never crawled itself: every job receives template.Fork(), a cheap
// copy with fresh mutable state (network, clock, visit counts) over the
// shared immutable structure. That split is what makes multi-tenancy
// deterministic — N concurrent jobs cannot perturb each other through
// the world because they never touch shared mutable state.
//
// The key is core.Config.Hash(), which normalizes scheduling knobs
// away, so two jobs differing only in Parallelism or telemetry wiring
// share one template. Hashing the full config (not just Config.World)
// is deliberately conservative: jobs differing in, say, walk count
// rebuild an identical world under a second key, trading a little
// memory for a key that provably identifies byte-identical runs.
type worldCache struct {
	mu      sync.Mutex
	entries map[string]*worldCacheEntry
	hits    *telemetry.Counter
	misses  *telemetry.Counter
}

type worldCacheEntry struct {
	once  sync.Once
	world *web.World
}

func newWorldCache(tel *telemetry.Telemetry) *worldCache {
	return &worldCache{
		entries: make(map[string]*worldCacheEntry),
		hits:    tel.Counter("serve.world_cache_hits"),
		misses:  tel.Counter("serve.world_cache_misses"),
	}
}

// Fork returns a fresh fork of the template for hash, building the
// template from wc on first use, and reports whether the template was
// already cached.
func (c *worldCache) Fork(hash string, wc web.Config) (*web.World, bool) {
	c.mu.Lock()
	e, hit := c.entries[hash]
	if !hit {
		e = &worldCacheEntry{}
		c.entries[hash] = e
	}
	c.mu.Unlock()
	if hit {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	e.once.Do(func() { e.world = web.BuildWorld(wc) })
	return e.world.Fork(), hit
}

// Len reports the number of cached templates.
func (c *worldCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
