package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"crumbcruncher/internal/core"
	"crumbcruncher/internal/telemetry"
)

// Job states. A job moves queued → running → one terminal state.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"    // DELETE /jobs/{id}, or dropped from the queue on drain
	StateInterrupted = "interrupted" // in-flight during drain; checkpointed for resume
)

// JobSpec is the POST /jobs request body. The zero value submits a
// default-configuration crawl at priority 0; Config overrides the whole
// configuration when the shorthand knobs are not enough.
type JobSpec struct {
	// Kind selects the work: "crawl" (default) runs the full pipeline;
	// "reanalyze" re-runs the post-crawl analysis over a stored run.
	Kind string `json:"kind,omitempty"`
	// Priority orders the queue: higher pops first, FIFO within a band.
	Priority int `json:"priority,omitempty"`
	// Small starts from core.SmallConfig instead of core.DefaultConfig.
	Small bool `json:"small,omitempty"`
	// Seed overrides the world seed when non-zero.
	Seed int64 `json:"seed,omitempty"`
	// Walks overrides the walk count when positive.
	Walks int `json:"walks,omitempty"`
	// Parallelism overrides pipeline concurrency when positive. It is a
	// scheduling knob: results are byte-identical at any value.
	Parallelism int `json:"parallelism,omitempty"`
	// Config, when set, replaces the base configuration entirely; the
	// shorthand knobs above still apply on top of it.
	Config *core.Config `json:"config,omitempty"`
	// RunID names the stored run a "reanalyze" job reads.
	RunID string `json:"run_id,omitempty"`
	// NoCheckpoint disables the per-job checkpoint a store-backed
	// server would otherwise record for drain/resume.
	NoCheckpoint bool `json:"no_checkpoint,omitempty"`
	// TimeoutMs, when > 0, bounds the job's execution: a job still
	// running after this many milliseconds fails with a timeout cause
	// (its checkpoint keeps the walks completed before the deadline).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// resolve expands the spec into the effective run configuration.
func (spec JobSpec) resolve() (core.Config, error) {
	switch spec.Kind {
	case "", KindCrawl, KindReanalyze:
	default:
		return core.Config{}, fmt.Errorf("unknown job kind %q", spec.Kind)
	}
	if spec.Kind == KindReanalyze && spec.RunID == "" {
		return core.Config{}, errors.New(`"reanalyze" jobs need run_id`)
	}
	var cfg core.Config
	switch {
	case spec.Config != nil:
		cfg = *spec.Config
	case spec.Small:
		cfg = core.SmallConfig()
	default:
		cfg = core.DefaultConfig()
	}
	if spec.Seed != 0 {
		cfg.World.Seed = spec.Seed
	}
	if spec.Walks > 0 {
		cfg.Walks = spec.Walks
	}
	if spec.Parallelism > 0 {
		cfg.Parallelism = spec.Parallelism
	}
	return cfg, nil
}

// Job kinds.
const (
	KindCrawl     = "crawl"
	KindReanalyze = "reanalyze"
)

// Job is one submitted unit of work and its full lifecycle. All mutable
// fields are guarded by mu; the HTTP layer reads through Status and the
// result accessors.
type Job struct {
	ID   string
	Spec JobSpec

	mu            sync.Mutex
	state         string
	cfg           core.Config
	configHash    string
	cacheHit      bool
	progress      core.Progress
	cancel        context.CancelFunc
	errText       string
	metrics       []byte
	report        []byte
	tel           *telemetry.Telemetry
	runID         string // run-store entry, once persisted
	checkpoint    string // checkpoint file path, when recorded
	enqueuedMs    int64
	startedMs     int64
	finishedMs    int64
	done          chan struct{}
	drainedInRun  bool // the server drained while this job was running
	canceledEarly bool // DELETE arrived while still queued
}

func newJob(id string, spec JobSpec, cfg core.Config, nowMs int64) *Job {
	j := &Job{
		ID:         id,
		Spec:       spec,
		state:      StateQueued,
		cfg:        cfg,
		enqueuedMs: nowMs,
		done:       make(chan struct{}),
	}
	if spec.Kind == "" {
		j.Spec.Kind = KindCrawl
	}
	if j.Spec.Kind == KindCrawl {
		j.configHash = cfg.Hash()
	}
	return j
}

// begin transitions queued → running, wiring the cancel func. It
// reports false when the job was canceled while still queued (the
// worker must skip it).
func (j *Job) begin(cancel context.CancelFunc, nowMs int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceledEarly {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	j.startedMs = nowMs
	return true
}

// finish records the terminal state and closes the done channel.
func (j *Job) finish(state, errText string, nowMs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = state
	j.errText = errText
	j.finishedMs = nowMs
	j.cancel = nil
	close(j.done)
}

// markCanceled handles DELETE and queue drain. For a queued job it is
// terminal immediately; for a running job it cancels the context and
// lets the worker record the terminal state once the pipeline drains.
func (j *Job) markCanceled(drain bool, nowMs int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.canceledEarly = true
		j.state = StateCanceled
		j.finishedMs = nowMs
		close(j.done)
	case StateRunning:
		j.drainedInRun = drain
		if j.cancel != nil {
			j.cancel()
		}
	}
}

func (j *Job) setProgress(p core.Progress) {
	j.mu.Lock()
	j.progress = p
	j.mu.Unlock()
}

func (j *Job) setResults(metrics, report []byte, runID string) {
	j.mu.Lock()
	j.metrics = metrics
	j.report = report
	j.runID = runID
	j.mu.Unlock()
}

// Status is the JSON view of a job served by GET /jobs and
// GET /jobs/{id}. Timing fields are milliseconds since server start,
// measured on the server's telemetry stopwatch.
type Status struct {
	ID            string        `json:"id"`
	Kind          string        `json:"kind"`
	State         string        `json:"state"`
	Priority      int           `json:"priority"`
	Seed          int64         `json:"seed"`
	ConfigHash    string        `json:"config_hash,omitempty"`
	WorldCacheHit bool          `json:"world_cache_hit,omitempty"`
	Progress      core.Progress `json:"progress"`
	Error         string        `json:"error,omitempty"`
	RunID         string        `json:"run_id,omitempty"`
	Checkpoint    string        `json:"checkpoint,omitempty"`
	EnqueuedMs    int64         `json:"enqueued_ms"`
	StartedMs     int64         `json:"started_ms,omitempty"`
	FinishedMs    int64         `json:"finished_ms,omitempty"`
}

// Status snapshots the job for the HTTP layer.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:            j.ID,
		Kind:          j.Spec.Kind,
		State:         j.state,
		Priority:      j.Spec.Priority,
		Seed:          j.cfg.World.Seed,
		ConfigHash:    j.configHash,
		WorldCacheHit: j.cacheHit,
		Progress:      j.progress,
		Error:         j.errText,
		RunID:         j.runID,
		Checkpoint:    j.checkpoint,
		EnqueuedMs:    j.enqueuedMs,
		StartedMs:     j.startedMs,
		FinishedMs:    j.finishedMs,
	}
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Metrics returns the metrics JSON of a finished job (nil before done).
func (j *Job) Metrics() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.metrics
}

// Report returns the rendered report of a finished job (nil before done).
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Telemetry returns the job's telemetry handle (nil until it runs).
func (j *Job) Telemetry() *telemetry.Telemetry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tel
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }
