package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"crumbcruncher"
)

// soloMetrics runs the same job the server would — directly through the
// Runner API, no server involved — and returns its metrics JSON. This
// is the determinism reference: multi-tenant execution must reproduce
// these bytes exactly.
func soloMetrics(t *testing.T, seed int64, walks, parallelism int) []byte {
	t.Helper()
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = seed
	cfg.Walks = walks
	cfg.Parallelism = parallelism
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := crumbcruncher.WriteMetricsJSON(&buf, run); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJob(t *testing.T, base, body string) Status {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// waitState polls a job until it reaches a terminal state and returns
// the final status.
func waitState(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var st Status
		getJSON(t, base+"/jobs/"+id, &st)
		switch st.State {
		case StateDone, StateFailed, StateCanceled, StateInterrupted:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	return b
}

// TestConcurrentJobsDeterministic is the multi-tenancy backstop: three
// concurrent jobs — two sharing a world config (and therefore one
// cached world template), one on a different seed — must each produce
// metrics byte-identical to the same jobs run solo through the Runner
// API. Run under -race this also proves the shared world template is
// free of data races across tenants.
func TestConcurrentJobsDeterministic(t *testing.T) {
	const walks, par = 12, 2
	wantA := soloMetrics(t, 5, walks, par)
	wantB := soloMetrics(t, 6, walks, par)

	srv, err := New(Options{Workers: 3, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	specs := []string{
		fmt.Sprintf(`{"small":true,"seed":5,"walks":%d,"parallelism":%d}`, walks, par),
		fmt.Sprintf(`{"small":true,"seed":5,"walks":%d,"parallelism":%d}`, walks, par),
		fmt.Sprintf(`{"small":true,"seed":6,"walks":%d,"parallelism":%d}`, walks, par),
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			ids[i] = postJob(t, ts.URL, spec).ID
		}(i, spec)
	}
	wg.Wait()

	for i, id := range ids {
		st := waitState(t, ts.URL, id)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
		got := fetchBody(t, ts.URL+"/jobs/"+id+"/metrics")
		want := wantA
		if i == 2 {
			want = wantB
		}
		if !bytes.Equal(got, want) {
			t.Errorf("job %s (%d): metrics diverge from solo run", id, i)
		}
	}

	// The two seed-5 jobs share one template: exactly 2 cache misses
	// (one per distinct config) and 1 hit across the three jobs.
	var vars debugVars
	getJSON(t, ts.URL+"/debug/vars", &vars)
	if got := vars.Metrics.Counters["serve.world_cache_misses"]; got != 2 {
		t.Errorf("world cache misses = %d, want 2", got)
	}
	if got := vars.Metrics.Counters["serve.world_cache_hits"]; got != 1 {
		t.Errorf("world cache hits = %d, want 1", got)
	}
	if vars.WorldCacheSize != 2 {
		t.Errorf("world cache size = %d, want 2", vars.WorldCacheSize)
	}

	// All three runs persisted to the store.
	var runs []RunEntry
	getJSON(t, ts.URL+"/runs", &runs)
	if len(runs) != 3 {
		t.Fatalf("store lists %d runs, want 3", len(runs))
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestReanalyzeMatchesCrawl submits a crawl, then a reanalysis of its
// stored run, and checks the two jobs agree byte-for-byte on metrics —
// the store round-trip plus the analysis-only pipeline reproduce the
// original results.
func TestReanalyzeMatchesCrawl(t *testing.T) {
	srv, err := New(Options{Workers: 1, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	crawl := postJob(t, ts.URL, `{"small":true,"seed":9,"walks":10,"parallelism":2}`)
	st := waitState(t, ts.URL, crawl.ID)
	if st.State != StateDone {
		t.Fatalf("crawl: state %s (%s)", st.State, st.Error)
	}
	crawlMetrics := fetchBody(t, ts.URL+"/jobs/"+crawl.ID+"/metrics")

	re := postJob(t, ts.URL, fmt.Sprintf(`{"kind":"reanalyze","run_id":%q,"parallelism":4}`, st.RunID))
	st = waitState(t, ts.URL, re.ID)
	if st.State != StateDone {
		t.Fatalf("reanalyze: state %s (%s)", st.State, st.Error)
	}
	reMetrics := fetchBody(t, ts.URL+"/jobs/"+re.ID+"/metrics")
	if !bytes.Equal(crawlMetrics, reMetrics) {
		t.Error("reanalysis metrics diverge from the original crawl")
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrain pins graceful shutdown: an in-flight job is interrupted and
// checkpointed for resume, a queued job is canceled, late submissions
// get 503 + Retry-After, and Drain returns cleanly.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A job big enough to still be running when the drain lands, plus
	// one stuck behind it in the single-worker queue.
	running := postJob(t, ts.URL, `{"small":true,"seed":3,"walks":2000,"parallelism":2}`)
	queued := postJob(t, ts.URL, `{"small":true,"seed":4,"walks":5}`)

	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Status
		getJSON(t, ts.URL+"/jobs/"+running.ID, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started (state %s)", running.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()

	// Draining flips before the queue empties; late submissions must
	// see 503 + Retry-After for as long as the server is up.
	for {
		var health struct {
			Draining bool `json:"draining"`
		}
		getJSON(t, ts.URL+"/healthz", &health)
		if health.Draining {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"small":true,"seed":8}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 during drain carries no Retry-After header")
	}

	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	var st Status
	getJSON(t, ts.URL+"/jobs/"+running.ID, &st)
	if st.State != StateInterrupted {
		t.Errorf("in-flight job state = %s, want %s", st.State, StateInterrupted)
	}
	if st.Checkpoint == "" {
		t.Fatal("interrupted job has no checkpoint path")
	}
	if _, err := os.Stat(st.Checkpoint); err != nil {
		t.Errorf("checkpoint not written: %v", err)
	}
	// The checkpoint must be resumable: reopening it restores the
	// interrupted job's completed walks.
	cp, err := crumbcruncher.OpenCheckpoint(st.Checkpoint, 3)
	if err != nil {
		t.Fatalf("reopening checkpoint: %v", err)
	}
	if cp.CompletedCount() == 0 {
		t.Error("checkpoint recorded no completed walks")
	}
	cp.Close()

	getJSON(t, ts.URL+"/jobs/"+queued.ID, &st)
	if st.State != StateCanceled {
		t.Errorf("queued job state = %s, want %s", st.State, StateCanceled)
	}
}

// TestCancelRunningJob pins DELETE /jobs/{id}: a running job stops and
// reports canceled, not interrupted (that state is reserved for drain).
func TestCancelRunningJob(t *testing.T) {
	srv, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := postJob(t, ts.URL, `{"small":true,"seed":2,"walks":2000,"parallelism":2}`)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Status
		getJSON(t, ts.URL+"/jobs/"+job.ID, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := waitState(t, ts.URL, job.ID)
	if st.State != StateCanceled {
		t.Errorf("state after DELETE = %s, want %s", st.State, StateCanceled)
	}

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSurvivesRestart pins the persistence contract: a second
// server over the same store directory lists the first server's runs
// and can reanalyze them.
func TestStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	job := postJob(t, ts.URL, `{"small":true,"seed":11,"walks":8}`)
	st := waitState(t, ts.URL, job.ID)
	if st.State != StateDone {
		t.Fatalf("state %s (%s)", st.State, st.Error)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, err := New(Options{Workers: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	var runs []RunEntry
	getJSON(t, ts2.URL+"/runs", &runs)
	if len(runs) != 1 || runs[0].ID != job.ID {
		t.Fatalf("restarted store lists %v, want the one saved run %s", runs, job.ID)
	}
	if err := srv2.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
