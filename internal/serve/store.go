package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"crumbcruncher"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/runstore"
	"crumbcruncher/internal/telemetry"
)

// indexVersion is bumped when the run-index entry layout changes.
const indexVersion = 1

// RunEntry is one line of the store's index: enough to list, locate and
// identify a persisted run without opening its (large) document.
type RunEntry struct {
	ID string `json:"id"`
	// File is the run document's path, relative to the store directory.
	File       string `json:"file"`
	Seed       int64  `json:"seed"`
	ConfigHash string `json:"config_hash"`
	Walks      int    `json:"walks"`
	// SavedUptimeMs is the server's stopwatch reading at save time.
	SavedUptimeMs int64 `json:"saved_uptime_ms"`
}

// Store persists completed runs under one directory: full run documents
// (re-analyzable with cmd/crumbreport or a "reanalyze" job) plus an
// append-only JSONL index that survives restarts — reopening a store
// replays the index, so GET /runs lists runs saved by earlier server
// processes. Opening scans and repairs: torn index tails are dropped by
// the runio line-file codec, a corrupt index is quarantined and rebuilt
// from its salvageable records, and entries whose run documents are
// missing or damaged are dropped (counted on serve.store_dropped_runs,
// never silently). Checkpoint files for draining jobs live in the same
// directory.
type Store struct {
	dir     string
	mu      sync.Mutex
	index   *runio.LineFile
	entries []RunEntry
	byID    map[string]RunEntry
}

// OpenStore opens (or creates) a run store rooted at dir, scanning and
// repairing the index on the way up. tel (optional) counts the repairs:
// runio.recovered_records / runio.quarantined_files from the line-file
// layer, serve.store_dropped_runs for index entries that no longer
// resolve to a readable run document.
func OpenStore(dir string, tel *telemetry.Telemetry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	want := runio.Header{Format: runio.IndexFormat, Version: indexVersion}
	path := filepath.Join(dir, "index.jsonl")
	opts := runio.OpenOptions{Tel: tel}
	index, lines, err := runio.OpenLineFile(path, want)
	if errors.Is(err, runio.ErrCorrupt) {
		// The damaged index is quarantined; salvage what still verifies
		// and rebuild. The run documents themselves are untouched.
		var dmg *runio.DamageError
		errors.As(err, &dmg)
		tel.Counter("runio.quarantined_files").Inc()
		salvaged, dropped, serr := runio.SalvageLineFile(dmg.Quarantined, want)
		if serr != nil {
			return nil, fmt.Errorf("serve: store: index corrupt and unsalvageable: %v (%w)", serr, err)
		}
		log.Printf("serve: store: index corrupt at record %d (quarantined to %s): salvaged %d entries, dropped %d",
			dmg.Record, dmg.Quarantined, len(salvaged), dropped)
		tel.Counter("runio.recovered_records").Add(int64(len(salvaged)))
		index, err = runio.ReplaceLineFile(path, want, salvaged, opts)
		lines = salvaged
	}
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	s := &Store{dir: dir, index: index, byID: make(map[string]RunEntry)}
	var keep [][]byte
	droppedRuns := 0
	for _, line := range lines {
		var e RunEntry
		if err := json.Unmarshal(line, &e); err != nil {
			droppedRuns++
			log.Printf("serve: store: dropping unreadable index entry: %v", err)
			continue
		}
		if err := s.verifyRun(e); err != nil {
			droppedRuns++
			log.Printf("serve: store: dropping run %s: %v", e.ID, err)
			continue
		}
		keep = append(keep, line)
		s.entries = append(s.entries, e)
		s.byID[e.ID] = e
	}
	if droppedRuns > 0 {
		// Persist the cleaned index atomically so the dropped entries do
		// not resurface on the next boot.
		tel.Counter("serve.store_dropped_runs").Add(int64(droppedRuns))
		index.Close()
		index, err = runio.ReplaceLineFile(path, want, keep, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: store: rewrite index: %w", err)
		}
		s.index = index
	}
	return s, nil
}

// verifyRun checks that an index entry still points at a readable run
// store: the file opens through the runstore codec, which re-verifies
// every record's checksum (legacy single-document runs verify their
// framed checksum the same way).
func (s *Store) verifyRun(e RunEntry) error {
	st, err := runstore.Open(s.RunPath(e))
	if err != nil {
		return err
	}
	return st.Close()
}

// Save persists a completed run under id and appends its index entry.
func (s *Store) Save(id string, run *core.Run, configHash string, uptimeMs int64) (RunEntry, error) {
	file := "run-" + id + ".json"
	if err := crumbcruncher.SaveRunStore(filepath.Join(s.dir, file), run); err != nil {
		return RunEntry{}, err
	}
	e := RunEntry{
		ID:            id,
		File:          file,
		Seed:          run.Config.World.Seed,
		ConfigHash:    configHash,
		Walks:         run.Config.Walks,
		SavedUptimeMs: uptimeMs,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.index.Append(e); err != nil {
		return RunEntry{}, fmt.Errorf("serve: store: index: %w", err)
	}
	s.entries = append(s.entries, e)
	s.byID[e.ID] = e
	return e, nil
}

// Lookup finds a run entry by id.
func (s *Store) Lookup(id string) (RunEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	return e, ok
}

// List returns the index entries in save order.
func (s *Store) List() []RunEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// RunPath returns the absolute path of an entry's run document.
func (s *Store) RunPath(e RunEntry) string { return filepath.Join(s.dir, e.File) }

// CheckpointPath returns where a job's checkpoint file lives.
func (s *Store) CheckpointPath(jobID string) string {
	return filepath.Join(s.dir, jobID+".checkpoint")
}

// Close closes the index file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.Close()
}
