package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"crumbcruncher"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/runio"
)

// indexVersion is bumped when the run-index entry layout changes.
const indexVersion = 1

// RunEntry is one line of the store's index: enough to list, locate and
// identify a persisted run without opening its (large) document.
type RunEntry struct {
	ID string `json:"id"`
	// File is the run document's path, relative to the store directory.
	File       string `json:"file"`
	Seed       int64  `json:"seed"`
	ConfigHash string `json:"config_hash"`
	Walks      int    `json:"walks"`
	// SavedUptimeMs is the server's stopwatch reading at save time.
	SavedUptimeMs int64 `json:"saved_uptime_ms"`
}

// Store persists completed runs under one directory: full run documents
// (re-analyzable with cmd/crumbreport or a "reanalyze" job) plus an
// append-only JSONL index that survives restarts — reopening a store
// replays the index, so GET /runs lists runs saved by earlier server
// processes. Torn index tails (a crash mid-append) are dropped by the
// runio line-file codec. Checkpoint files for draining jobs live in the
// same directory.
type Store struct {
	dir     string
	mu      sync.Mutex
	index   *runio.LineFile
	entries []RunEntry
	byID    map[string]RunEntry
}

// OpenStore opens (or creates) a run store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	want := runio.Header{Format: runio.IndexFormat, Version: indexVersion}
	index, lines, err := runio.OpenLineFile(filepath.Join(dir, "index.jsonl"), want)
	if err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	s := &Store{dir: dir, index: index, byID: make(map[string]RunEntry)}
	for _, line := range lines {
		var e RunEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // schema mismatch in the tail: stop, like a torn write
		}
		s.entries = append(s.entries, e)
		s.byID[e.ID] = e
	}
	return s, nil
}

// Save persists a completed run under id and appends its index entry.
func (s *Store) Save(id string, run *core.Run, configHash string, uptimeMs int64) (RunEntry, error) {
	file := "run-" + id + ".json"
	if err := crumbcruncher.SaveRun(filepath.Join(s.dir, file), run); err != nil {
		return RunEntry{}, err
	}
	e := RunEntry{
		ID:            id,
		File:          file,
		Seed:          run.Config.World.Seed,
		ConfigHash:    configHash,
		Walks:         run.Config.Walks,
		SavedUptimeMs: uptimeMs,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.index.Append(e); err != nil {
		return RunEntry{}, fmt.Errorf("serve: store: index: %w", err)
	}
	s.entries = append(s.entries, e)
	s.byID[e.ID] = e
	return e, nil
}

// Lookup finds a run entry by id.
func (s *Store) Lookup(id string) (RunEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	return e, ok
}

// List returns the index entries in save order.
func (s *Store) List() []RunEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RunEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// RunPath returns the absolute path of an entry's run document.
func (s *Store) RunPath(e RunEntry) string { return filepath.Join(s.dir, e.File) }

// CheckpointPath returns where a job's checkpoint file lives.
func (s *Store) CheckpointPath(jobID string) string {
	return filepath.Join(s.dir, jobID+".checkpoint")
}

// Close closes the index file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.Close()
}
