package crumbcruncher_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crumbcruncher"
)

// TestRunStoreMetricsIdentical pins the RunStore acceptance bar: a
// crawl saved to the line backend and to the segment backend, then
// re-analysed by cursor through AnalyzeStore, reproduces the in-memory
// run's metrics JSON byte for byte — at analysis parallelism 1, 4 and
// 16.
func TestRunStoreMetricsIdentical(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = 7
	cfg.Walks = 40
	base, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := crumbcruncher.WriteMetricsJSON(&want, base); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := map[string]string{
		"line":    filepath.Join(dir, "crawl.json"),
		"segment": filepath.Join(dir, "crawl.crumbs"),
	}
	for name, path := range paths {
		if err := crumbcruncher.SaveRunStore(path, base); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
	}
	if fi, err := os.Stat(paths["segment"]); err != nil || !fi.IsDir() {
		t.Fatalf("segment store is not a directory: %v %v", fi, err)
	}

	for name, path := range paths {
		st, err := crumbcruncher.OpenRunStore(path)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if st.Walks() != cfg.Walks {
			t.Fatalf("%s: store holds %d walks, want %d", name, st.Walks(), cfg.Walks)
		}
		run, err := crumbcruncher.AnalyzeStore(context.Background(), st)
		if err != nil {
			t.Fatalf("%s: analyze: %v", name, err)
		}
		var got strings.Builder
		if err := crumbcruncher.WriteMetricsJSON(&got, run); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: store-analysed metrics diverge from the in-memory run", name)
		}
		for _, par := range []int{1, 4, 16} {
			pcfg := run.Config
			pcfg.Parallelism = par
			rerun, err := crumbcruncher.ReanalyzeContext(context.Background(), pcfg, run)
			if err != nil {
				t.Fatalf("%s: reanalyze par=%d: %v", name, par, err)
			}
			var pgot strings.Builder
			if err := crumbcruncher.WriteMetricsJSON(&pgot, rerun); err != nil {
				t.Fatal(err)
			}
			if pgot.String() != want.String() {
				t.Errorf("%s: metrics diverge at parallelism %d", name, par)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

// TestRunStoreWalkAccess pins random access through the public API: a
// saved run serves any single walk by index without analysis.
func TestRunStoreWalkAccess(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = 3
	cfg.Walks = 12
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crawl.crumbs")
	if err := crumbcruncher.SaveRunStore(path, run); err != nil {
		t.Fatal(err)
	}
	st, err := crumbcruncher.OpenRunStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	w, err := st.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if w.Index != 7 || len(w.Steps) == 0 {
		t.Fatalf("walk 7 = index %d with %d steps", w.Index, len(w.Steps))
	}
	if _, err := st.Get(99); err == nil {
		t.Fatal("Get(99) on a 12-walk store succeeded")
	}
}
