#!/bin/sh
# CI smoke check: the sharded post-crawl pipeline must actually be
# faster in parallel. Runs BenchmarkAnalyzeParallel (worker-pool sizes 1
# and NumCPU) and asserts the parallel variant beats sequential.
#
# On runners with fewer than 4 CPUs the speedup is noise-bound, so the
# benchmark still runs (keeping the concurrent path exercised) but the
# assertion is downgraded to a warning.
#
# Usage: scripts/parsmoke.sh
# BENCHTIME overrides the iteration budget (default 2x).
set -eu
cd "$(dirname "$0")/.."

cpus="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench '^BenchmarkAnalyzeParallel$' \
	-benchtime "${BENCHTIME:-2x}" . | tee "$raw"

# Benchmark lines look like:
#   BenchmarkAnalyzeParallel/parallelism-1-8   2   413ms/op ...
# where the trailing -8 is GOMAXPROCS (absent on 1-CPU runners).
par1="$(awk '$1 ~ /\/parallelism-1(-[0-9]+)?$/ { print $3; exit }' "$raw")"
parN="$(awk '$1 ~ /\/parallelism-/ && $1 !~ /\/parallelism-1(-[0-9]+)?$/ { print $3; exit }' "$raw")"

if [ -z "$par1" ] || [ -z "$parN" ]; then
	echo "FAIL: could not parse benchmark output" >&2
	exit 1
fi

if [ "$cpus" -lt 4 ]; then
	echo "WARN: runner has $cpus CPU(s) (< 4); not asserting parallel speedup" \
		"(parallelism-1: ${par1} ns/op, parallel: ${parN} ns/op)"
	exit 0
fi

if awk "BEGIN { exit !($parN < $par1) }"; then
	echo "OK: parallel analysis ${parN} ns/op beats sequential ${par1} ns/op on $cpus CPUs"
else
	echo "FAIL: parallel analysis ${parN} ns/op is not faster than sequential ${par1} ns/op on $cpus CPUs" >&2
	exit 1
fi
