#!/bin/sh
# CI smoke check for the crumbserved service shape: boot the server,
# submit two concurrent jobs, poll to completion, and diff each job's
# metrics against the crumbcruncher CLI running the same seed solo —
# the end-to-end form of the multi-tenant determinism guarantee. Then
# exercise SIGTERM drain: an in-flight job must checkpoint, a late
# submission must see 503 + Retry-After, and the process must exit 0.
#
# Usage: scripts/servesmoke.sh
set -eu
cd "$(dirname "$0")/.."

WALKS=12
PAR=2
ADDR=127.0.0.1:18099
BASE="http://$ADDR"

work="$(mktemp -d)"
cleanup() {
	[ -n "${SRV_PID:-}" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/crumbserved" ./cmd/crumbserved
go build -o "$work/crumbcruncher" ./cmd/crumbcruncher

"$work/crumbserved" -addr "$ADDR" -workers 2 -store "$work/runs" \
	-drain-grace 60s 2>"$work/served.log" &
SRV_PID=$!

# Wait for the API to come up.
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "FAIL: server did not come up" >&2
		cat "$work/served.log" >&2
		exit 1
	fi
	sleep 0.1
done

submit() { # submit BODY -> job id
	curl -sf -X POST "$BASE/jobs" -d "$1" |
		sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1
}

job_state() { # job_state ID
	curl -sf "$BASE/jobs/$1" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1
}

wait_done() { # wait_done ID
	i=0
	while :; do
		state="$(job_state "$1")"
		case "$state" in
		done) return 0 ;;
		failed | canceled | interrupted)
			echo "FAIL: job $1 ended $state" >&2
			curl -s "$BASE/jobs/$1" >&2
			exit 1
			;;
		esac
		i=$((i + 1))
		if [ "$i" -gt 600 ]; then
			echo "FAIL: job $1 stuck in state '$state'" >&2
			exit 1
		fi
		sleep 0.2
	done
}

# Two concurrent jobs on different seeds.
JOB5="$(submit "{\"small\":true,\"seed\":5,\"walks\":$WALKS,\"parallelism\":$PAR}")"
JOB6="$(submit "{\"small\":true,\"seed\":6,\"walks\":$WALKS,\"parallelism\":$PAR}")"
[ -n "$JOB5" ] && [ -n "$JOB6" ] || {
	echo "FAIL: job submission returned no id" >&2
	exit 1
}
wait_done "$JOB5"
wait_done "$JOB6"

# Each server-side result must match the CLI running the same job solo.
for pair in "5 $JOB5" "6 $JOB6"; do
	seed="${pair% *}"
	job="${pair#* }"
	curl -sf "$BASE/jobs/$job/metrics" >"$work/serve-$seed.json"
	"$work/crumbcruncher" -small -seed "$seed" -walks "$WALKS" \
		-parallel "$PAR" -metrics -out "$work/solo-$seed.json" 2>/dev/null
	if ! diff -q "$work/serve-$seed.json" "$work/solo-$seed.json" >/dev/null; then
		echo "FAIL: seed $seed: server metrics diverge from solo CLI run" >&2
		diff "$work/serve-$seed.json" "$work/solo-$seed.json" >&2 || true
		exit 1
	fi
	echo "OK: seed $seed metrics byte-identical between crumbserved and crumbcruncher"
done

# Drain: start a job too big to finish, SIGTERM, then expect 503 on a
# late submission and a checkpoint for the interrupted job.
JOBBIG="$(submit '{"small":true,"seed":3,"walks":5000,"parallelism":2}')"
i=0
while [ "$(job_state "$JOBBIG")" != "running" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && {
		echo "FAIL: drain job never started" >&2
		exit 1
	}
	sleep 0.1
done

# The drain window can be milliseconds wide (the in-flight job stops at
# the next walk boundary), so a polling loop started after the signal
# can miss it entirely. Instead hammer /jobs continuously from just
# before the signal: pre-signal probes get 202 (harmless extra jobs the
# drain cancels), the drain window yields 503, and the closed listener
# ends the loop with 000.
: >"$work/drain_codes"
(
	while :; do
		c="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/jobs" \
			-d '{"small":true,"seed":9}' 2>/dev/null)" || c=000
		echo "$c" >>"$work/drain_codes"
		case "$c" in 000*) break ;; esac
	done
) &
PROBE_PID=$!

kill -TERM "$SRV_PID"
wait "$PROBE_PID"

if grep -qx 503 "$work/drain_codes"; then
	echo "OK: late submission during drain rejected with 503"
else
	echo "FAIL: no late submission during drain saw 503 (codes: $(sort -u "$work/drain_codes" | tr '\n' ' '))" >&2
	cat "$work/served.log" >&2
	exit 1
fi

if ! wait "$SRV_PID"; then
	echo "FAIL: crumbserved exited non-zero after SIGTERM" >&2
	cat "$work/served.log" >&2
	exit 1
fi
SRV_PID=""
echo "OK: crumbserved drained and exited 0"

if [ ! -s "$work/runs/$JOBBIG.checkpoint" ]; then
	echo "FAIL: no checkpoint for interrupted job $JOBBIG" >&2
	ls -la "$work/runs" >&2
	exit 1
fi
echo "OK: interrupted job checkpointed at runs/$JOBBIG.checkpoint"
echo "PASS: servesmoke"
