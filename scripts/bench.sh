#!/bin/sh
# Runs the tracked benchmark set — the end-to-end crawl (BenchmarkCrawl),
# the parallel post-crawl re-analysis (BenchmarkAnalyzeParallel) and the
# streaming-vs-batch engine comparison (BenchmarkExecuteStreaming) — and
# archives the results as JSON for cross-run comparison.
#
# Usage: scripts/bench.sh [output.json]
# BENCHTIME overrides the per-benchmark iteration budget (default 1x:
# BenchmarkAnalyzeParallel's fixture is a paper-scale crawl).
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_pr6.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench '^(BenchmarkCrawl|BenchmarkAnalyzeParallel|BenchmarkExecuteStreaming)$' \
	-benchtime "${BENCHTIME:-1x}" -benchmem . | tee "$raw"

awk '
BEGIN { print "{"; printf "  \"benchmarks\": [" ; sep = "" }
/^Benchmark/ {
	printf "%s\n    {\"name\": \"%s\", \"iterations\": %s", sep, $1, $2
	for (i = 3; i < NF; i += 2) {
		key = $(i + 1)
		gsub(/["\\]/, "", key)
		printf ", \"%s\": %s", key, $i
	}
	printf "}"
	sep = ","
}
END { print "\n  ]"; print "}" }
' "$raw" >"$out"

echo "wrote $out"
