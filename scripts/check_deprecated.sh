#!/bin/sh
# Fails if any command or example still calls the deprecated package
# entry points (Execute, ExecuteContext, Reanalyze) instead of the
# Runner API. The wrappers stay for downstream compatibility, but
# everything in this repository must demonstrate the supported surface.
set -eu
cd "$(dirname "$0")/.."

bad=0
for pat in 'crumbcruncher\.Execute(' 'crumbcruncher\.ExecuteContext(' 'crumbcruncher\.Reanalyze('; do
	if grep -rn --include='*.go' "$pat" cmd/ examples/; then
		bad=1
	fi
done
if [ "$bad" -ne 0 ]; then
	echo "error: deprecated entry points used above; call crumbcruncher.NewRunner(cfg, opts...).Run(ctx) / ReanalyzeContext instead" >&2
	exit 1
fi
echo "no deprecated entry-point uses in cmd/ or examples/"
