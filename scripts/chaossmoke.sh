#!/bin/sh
# CI smoke check for the crash-safety layer (DESIGN.md §12): the
# crash-recover-verify loop at three process-level chaos points, plus
# the in-process seeded chaos matrix under -race.
#
#   1. crawl kill: SIGKILL a checkpointed crumbcruncher run mid-crawl,
#      resume it, and require metrics byte-identical to a clean run.
#   2. server kill: SIGKILL crumbserved (no drain), restart on the same
#      store, and require the persisted run to survive and reanalyze to
#      the same metrics.
#   3. corrupt-index boot: flip a byte inside a run-index record and
#      require the restarted server to quarantine, repair and keep
#      serving the undamaged runs — never silently skipping the damage.
#
# Usage: scripts/chaossmoke.sh
set -eu
cd "$(dirname "$0")/.."

SEED=4
WALKS=600
ADDR=127.0.0.1:18097
BASE="http://$ADDR"

work="$(mktemp -d)"
cleanup() {
	[ -n "${CRAWL_PID:-}" ] && kill -9 "$CRAWL_PID" 2>/dev/null || true
	[ -n "${SRV_PID:-}" ] && kill -9 "$SRV_PID" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "--- chaos: in-process seeded fault matrix (-race)"
go test -race -count=1 -run 'TestChaos' .
go test -race -count=1 ./internal/chaos

go build -o "$work/crumbcruncher" ./cmd/crumbcruncher
go build -o "$work/crumbserved" ./cmd/crumbserved

# --- Chaos point 1: crawl kill -----------------------------------------------

echo "--- chaos: crawl kill + resume"
"$work/crumbcruncher" -small -seed "$SEED" -walks "$WALKS" -parallel 1 \
	-metrics -out "$work/clean.json" 2>/dev/null

ckpt="$work/ckpt.jsonl"
"$work/crumbcruncher" -small -seed "$SEED" -walks "$WALKS" -parallel 1 \
	-fsync every-record -resume "$ckpt" \
	-metrics -out "$work/victim.json" 2>"$work/victim.log" &
CRAWL_PID=$!

# Kill once a handful of walks have hit the disk (every-record fsync
# makes that prompt), well before the 600-walk crawl can finish.
i=0
while [ "$([ -f "$ckpt" ] && wc -l <"$ckpt" || echo 0)" -lt 6 ]; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "FAIL: checkpoint never accumulated walks" >&2
		cat "$work/victim.log" >&2
		exit 1
	fi
	sleep 0.05
done
kill -9 "$CRAWL_PID"
wait "$CRAWL_PID" 2>/dev/null && {
	echo "FAIL: victim run completed before the kill landed" >&2
	exit 1
}
CRAWL_PID=""
echo "OK: killed mid-crawl with $(wc -l <"$ckpt") checkpoint lines"

"$work/crumbcruncher" -small -seed "$SEED" -walks "$WALKS" -parallel 1 \
	-fsync every-record -resume "$ckpt" \
	-metrics -out "$work/resumed.json" 2>"$work/resume.log"
grep -q "resuming:" "$work/resume.log" || {
	echo "FAIL: resumed run did not pick up the checkpoint" >&2
	cat "$work/resume.log" >&2
	exit 1
}
if ! diff -q "$work/clean.json" "$work/resumed.json" >/dev/null; then
	echo "FAIL: killed-and-resumed metrics diverge from the clean run" >&2
	diff "$work/clean.json" "$work/resumed.json" >&2 || true
	exit 1
fi
echo "OK: killed-and-resumed metrics byte-identical to the clean run"

# --- Chaos point 2: server kill ----------------------------------------------

echo "--- chaos: server kill + restart"
start_server() {
	"$work/crumbserved" -addr "$ADDR" -workers 1 -store "$work/runs" \
		2>>"$work/served.log" &
	SRV_PID=$!
	i=0
	until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "FAIL: server did not come up" >&2
			cat "$work/served.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

submit() { # submit BODY -> job id
	curl -sf -X POST "$BASE/jobs" -d "$1" |
		sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1
}

wait_done() { # wait_done ID
	i=0
	while :; do
		state="$(curl -sf "$BASE/jobs/$1" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)"
		[ "$state" = "done" ] && return 0
		case "$state" in
		failed | canceled | interrupted)
			echo "FAIL: job $1 ended $state" >&2
			curl -s "$BASE/jobs/$1" >&2
			exit 1
			;;
		esac
		i=$((i + 1))
		[ "$i" -gt 600 ] && {
			echo "FAIL: job $1 stuck in state '$state'" >&2
			exit 1
		}
		sleep 0.2
	done
}

start_server
JOB1="$(submit '{"small":true,"seed":5,"walks":12}')"
wait_done "$JOB1"
curl -sf "$BASE/jobs/$JOB1/metrics" >"$work/job1.json"
JOB2="$(submit '{"small":true,"seed":6,"walks":12}')"
wait_done "$JOB2"

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "OK: server killed without drain"

start_server
runs="$(curl -sf "$BASE/runs")"
echo "$runs" | grep -q "\"$JOB1\"" || {
	echo "FAIL: run $JOB1 lost across the kill" >&2
	echo "$runs" >&2
	exit 1
}
RE="$(submit "{\"kind\":\"reanalyze\",\"run_id\":\"$JOB1\"}")"
wait_done "$RE"
curl -sf "$BASE/jobs/$RE/metrics" >"$work/reanalyzed.json"
if ! diff -q "$work/job1.json" "$work/reanalyzed.json" >/dev/null; then
	echo "FAIL: reanalysis after server kill diverges from the original metrics" >&2
	diff "$work/job1.json" "$work/reanalyzed.json" >&2 || true
	exit 1
fi
echo "OK: store survived the kill; reanalysis metrics byte-identical"

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

# --- Chaos point 3: corrupt-index boot ---------------------------------------

echo "--- chaos: corrupt-index boot"
# Flip one payload byte of the last index record (JOB2's entry): a
# mid-file corruption the next boot must quarantine, not trust or skip.
idx="$work/runs/index.jsonl"
size="$(wc -c <"$idx")"
printf '~' | dd of="$idx" bs=1 seek=$((size - 10)) count=1 conv=notrunc 2>/dev/null

start_server
[ -s "$idx.corrupt" ] || {
	echo "FAIL: corrupt index was not quarantined" >&2
	cat "$work/served.log" >&2
	exit 1
}
grep -q "index corrupt" "$work/served.log" || {
	echo "FAIL: index repair not logged" >&2
	cat "$work/served.log" >&2
	exit 1
}
runs="$(curl -sf "$BASE/runs")"
echo "$runs" | grep -q "\"$JOB1\"" || {
	echo "FAIL: undamaged run $JOB1 lost during index repair" >&2
	echo "$runs" >&2
	exit 1
}
echo "$runs" | grep -q "\"$JOB2\"" && {
	echo "FAIL: damaged entry $JOB2 silently trusted after corruption" >&2
	echo "$runs" >&2
	exit 1
}
echo "OK: corrupt index quarantined to index.jsonl.corrupt, clean entries survive"

kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "PASS: chaossmoke"
