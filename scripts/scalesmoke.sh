#!/bin/sh
# CI smoke check for the lazy-world + RunStore scale path:
#
#   1. eager-vs-lazy identity: the same seed at 1k domains must produce
#      byte-identical metrics whether the world is generated upfront or
#      derived site-by-site on first visit.
#   2. scale crawl: a 100k-domain lazy world crawled for 1k walks,
#      saved to the segment store. Peak RSS is compared against a
#      budget — warn-only, because CI runners vary — and the crawl
#      must finish at all, which an eager 100k world would not do in
#      the same memory class.
#   3. store identity: crumbreport re-analysing the saved segment
#      store must reproduce the crawl's metrics byte for byte.
#
# Usage: scripts/scalesmoke.sh
# RSS_BUDGET_KB overrides the warn threshold (default 2 GiB).
set -eu
cd "$(dirname "$0")/.."

SEED=11
RSS_BUDGET_KB="${RSS_BUDGET_KB:-2097152}"

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

go build -o "$work/crumbcruncher" ./cmd/crumbcruncher
go build -o "$work/crumbreport" ./cmd/crumbreport

echo "--- scale: eager vs lazy metrics at 1k domains"
"$work/crumbcruncher" -seed "$SEED" -sites 1000 -walks 200 \
	-metrics -out "$work/eager.json" 2>/dev/null
"$work/crumbcruncher" -seed "$SEED" -sites 1000 -walks 200 -lazy \
	-metrics -out "$work/lazy.json" 2>/dev/null
if ! cmp -s "$work/eager.json" "$work/lazy.json"; then
	echo "FAIL: lazy world diverged from eager at 1k domains" >&2
	diff "$work/eager.json" "$work/lazy.json" >&2 || true
	exit 1
fi
echo "OK: eager and lazy metrics are byte-identical"

echo "--- scale: 100k-domain lazy world, 1k-walk crawl into the segment store"
store="$work/scale.crumbs"
# GNU time reports peak RSS; without it the crawl still runs, only the
# budget check is skipped.
if /usr/bin/time -v true 2>/dev/null; then
	/usr/bin/time -v -o "$work/time.txt" \
		"$work/crumbcruncher" -seed "$SEED" -sites 100000 -walks 1000 -lazy \
		-save "$store" -metrics -out "$work/scale.json" 2>/dev/null
	rss_kb="$(awk -F: '/Maximum resident set size/ { gsub(/ /, "", $2); print $2 }' "$work/time.txt")"
	if [ -n "$rss_kb" ] && [ "$rss_kb" -gt "$RSS_BUDGET_KB" ]; then
		echo "WARN: peak RSS ${rss_kb} kB exceeds the ${RSS_BUDGET_KB} kB budget (warn-only)"
	else
		echo "OK: peak RSS ${rss_kb:-unknown} kB within the ${RSS_BUDGET_KB} kB budget"
	fi
else
	echo "WARN: GNU time unavailable; skipping the RSS budget check"
	"$work/crumbcruncher" -seed "$SEED" -sites 100000 -walks 1000 -lazy \
		-save "$store" -metrics -out "$work/scale.json" 2>/dev/null
fi
if [ ! -d "$store" ]; then
	echo "FAIL: $store is not a segment directory" >&2
	exit 1
fi

echo "--- scale: crumbreport from the segment backend"
"$work/crumbreport" -in "$store" -metrics >"$work/report.json"
if ! cmp -s "$work/scale.json" "$work/report.json"; then
	echo "FAIL: crumbreport metrics from the segment store diverge from the crawl" >&2
	diff "$work/scale.json" "$work/report.json" >&2 || true
	exit 1
fi
echo "OK: segment-store re-analysis reproduces the crawl's metrics"
