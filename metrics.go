package crumbcruncher

import (
	"encoding/json"
	"io"

	"crumbcruncher/internal/uid"
)

// Metrics is the machine-readable summary of a run: every headline
// quantity from the paper's evaluation, suitable for dashboards, CI
// tracking, or cross-run comparison. WriteMetricsJSON emits it.
type Metrics struct {
	Seed  int64 `json:"seed"`
	Walks int   `json:"walks"`
	Steps int   `json:"steps"`

	// Headline (§5, §8).
	SmugglingRate float64 `json:"smuggling_rate"`
	BounceRate    float64 `json:"bounce_rate"`

	// §3.3 failures.
	NoCommonElementRate float64 `json:"no_common_element_rate"`
	DivergentRate       float64 `json:"divergent_rate"`
	ConnectFailRate     float64 `json:"connect_fail_rate"`

	// Resilience split of the connection-failure population (all zero
	// when the crawl ran without retries or transient faults).
	RetriedRequests     int     `json:"retried_requests,omitempty"`
	SitesRecovered      int     `json:"sites_transient_recovered,omitempty"`
	SitesUnreachable    int     `json:"sites_permanently_unreachable,omitempty"`
	RecoveredSiteRate   float64 `json:"transient_recovered_rate,omitempty"`
	UnreachableSiteRate float64 `json:"permanently_unreachable_rate,omitempty"`

	// Table 1.
	Table1 map[string]int `json:"table1"`

	// Table 2.
	UniqueURLPaths             int `json:"unique_url_paths"`
	UniqueURLPathsSmuggling    int `json:"unique_url_paths_smuggling"`
	UniqueDomainPathsSmuggling int `json:"unique_domain_paths_smuggling"`
	UniqueRedirectors          int `json:"unique_redirectors"`
	DedicatedSmugglers         int `json:"dedicated_smugglers"`
	MultiPurposeSmugglers      int `json:"multi_purpose_smugglers"`
	UniqueOriginators          int `json:"unique_originators"`
	UniqueDestinations         int `json:"unique_destinations"`

	// §3.7 pipeline accounting.
	Candidates        int `json:"candidates"`
	ReachedManual     int `json:"reached_manual"`
	ManuallyRemoved   int `json:"manually_removed"`
	ConfirmedUIDCases int `json:"confirmed_uid_cases"`

	// §3.7.1 lifetimes.
	Under90DayFraction float64 `json:"uid_lifetime_under_90d_fraction"`
	Under30DayFraction float64 `json:"uid_lifetime_under_30d_fraction"`

	// §5.1 / §7.1 blocklist coverage.
	DisconnectMissingFraction float64 `json:"disconnect_missing_fraction"`
	EasyListBlockedFraction   float64 `json:"easylist_blocked_fraction"`

	// §7.2 contributions. (The unique smuggling path count lives in
	// UniqueURLPathsSmuggling; a former duplicate field was removed.)
	UIDParamNames []string `json:"uid_param_names"`
	SmugglerHosts []string `json:"dedicated_smuggler_hosts"`
}

// ComputeMetrics extracts the run's headline quantities.
func ComputeMetrics(r *Run) Metrics {
	s := r.Analysis.Summarize()
	fr := r.Analysis.FailureRates()
	rs := r.Analysis.Resilience()
	lt := uid.ComputeLifetimeStats(r.Cases, r.Lifetimes)
	buckets := uid.BucketCounts(r.Cases)
	t1 := make(map[string]int, len(buckets))
	for b, n := range buckets {
		t1[string(b)] = n
	}
	return Metrics{
		Seed:  r.Config.World.Seed,
		Walks: r.Analysis.WalkCount(),
		Steps: r.Analysis.StepCount(),

		SmugglingRate: r.Analysis.SmugglingRate(),
		BounceRate:    r.Analysis.BounceRate(),

		NoCommonElementRate: fr.NoCommonElement,
		DivergentRate:       fr.Divergent,
		ConnectFailRate:     fr.ConnectError,

		RetriedRequests:     rs.RetriedRequests,
		SitesRecovered:      rs.SitesRecovered,
		SitesUnreachable:    rs.SitesUnreachable,
		RecoveredSiteRate:   rs.RecoveredRate,
		UnreachableSiteRate: rs.UnreachableRate,

		Table1: t1,

		UniqueURLPaths:             s.UniqueURLPaths,
		UniqueURLPathsSmuggling:    s.UniqueURLPathsSmuggling,
		UniqueDomainPathsSmuggling: s.UniqueDomainPathsSmuggling,
		UniqueRedirectors:          s.UniqueRedirectors,
		DedicatedSmugglers:         s.DedicatedSmugglers,
		MultiPurposeSmugglers:      s.MultiPurposeSmugglers,
		UniqueOriginators:          s.UniqueOriginators,
		UniqueDestinations:         s.UniqueDestinations,

		Candidates:        r.Stats.Candidates,
		ReachedManual:     r.Stats.AfterProgrammatic,
		ManuallyRemoved:   r.Stats.ManuallyRemoved,
		ConfirmedUIDCases: r.Stats.Final,

		Under90DayFraction: lt.Under90Fraction(),
		Under30DayFraction: lt.Under30Fraction(),

		DisconnectMissingFraction: r.DisconnectDomains().MissingFraction(r.Analysis.DedicatedSmugglers()),
		EasyListBlockedFraction:   r.EasyList().BlockedFraction(r.Analysis.SmugglingURLs()),

		UIDParamNames: r.Analysis.SmugglerParamNames(),
		SmugglerHosts: r.Analysis.DedicatedSmugglers(),
	}
}

// WriteMetricsJSON writes the run's metrics as indented JSON.
func WriteMetricsJSON(w io.Writer, r *Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ComputeMetrics(r))
}
