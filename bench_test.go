// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, each regenerating its rows/series from a shared paper-scale
// crawl and reporting the headline quantity as a benchmark metric, plus
// ablation benchmarks for the design choices DESIGN.md calls out
// (crawler count, session-ID strategy, value matching, synchronization
// heuristics) and micro-benchmarks of the hot substrate paths.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The fixture crawl is built once; per-iteration timings measure the
// analysis that regenerates each table or figure.
package crumbcruncher_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"crumbcruncher"
	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/countermeasures"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/storage"
	"crumbcruncher/internal/tokens"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

var (
	fixOnce sync.Once
	fixRun  *crumbcruncher.Run
	fixErr  error
)

// fixture executes the calibrated paper-scale pipeline once per process.
func fixture(b *testing.B) *crumbcruncher.Run {
	b.Helper()
	fixOnce.Do(func() {
		fixRun, fixErr = crumbcruncher.NewRunner(crumbcruncher.DefaultConfig()).Run(context.Background())
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fixRun
}

// --- §3.3: failure rates ------------------------------------------------------

func BenchmarkCrawlFailureRates(b *testing.B) {
	r := fixture(b)
	var fr analysis.FailureRates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr = r.Analysis.FailureRates()
	}
	b.ReportMetric(100*fr.NoCommonElement, "%noMatch(paper:7.6)")
	b.ReportMetric(100*fr.Divergent, "%divergent(paper:1.8)")
	b.ReportMetric(100*fr.ConnectError, "%connect(paper:3.3)")
}

// --- §3.5: fingerprinting experiment --------------------------------------------

func BenchmarkFingerprintingExperiment(b *testing.B) {
	r := fixture(b)
	fps := r.World.Fingerprinters()
	var exp analysis.FPExperiment
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err = r.Analysis.FingerprintingExperiment(fps)
	}
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(100*exp.OnFingerprinters, "%onFP(paper:13)")
	b.ReportMetric(100*exp.FPMulti.Value(), "%fpMulti(paper:44)")
	b.ReportMetric(100*exp.NonFPMulti.Value(), "%nonFPMulti(paper:52)")
}

// --- §3.7.1: UID lifetimes ------------------------------------------------------

func BenchmarkSessionIDLifetimes(b *testing.B) {
	r := fixture(b)
	var st uid.LifetimeStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = uid.ComputeLifetimeStats(r.Cases, r.Lifetimes)
	}
	b.ReportMetric(100*st.Under90Fraction(), "%under90d(paper:16)")
	b.ReportMetric(100*st.Under30Fraction(), "%under30d(paper:9)")
}

// --- §3.7.2: programmatic + manual filtering --------------------------------------

func BenchmarkManualFilter(b *testing.B) {
	r := fixture(b)
	var stats uid.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats = uid.Identify(r.Candidates, uid.Options{LifetimeOf: r.Lifetimes.Lifetime})
	}
	b.ReportMetric(float64(stats.AfterProgrammatic), "reachedManual(paper:1581)")
	b.ReportMetric(float64(stats.ManuallyRemoved), "manuallyRemoved(paper:577)")
	b.ReportMetric(float64(stats.Final), "finalUIDs(paper:~1004)")
}

// --- Table 1 ----------------------------------------------------------------------

func BenchmarkTable1CrawlerCombinations(b *testing.B) {
	r := fixture(b)
	var counts map[uid.Bucket]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts = uid.BucketCounts(r.Cases)
	}
	b.StopTimer()
	b.ReportMetric(float64(counts[uid.BucketPairPlus]), "pairPlus(paper:325)")
	b.ReportMetric(float64(counts[uid.BucketDifferentOnly]), "diffOnly(paper:171)")
	b.ReportMetric(float64(counts[uid.BucketPairOnly]), "pairOnly(paper:20)")
	b.ReportMetric(float64(counts[uid.BucketSingle]), "single(paper:445)")
}

// --- Table 2 ----------------------------------------------------------------------

func BenchmarkTable2Summary(b *testing.B) {
	r := fixture(b)
	var s analysis.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = r.Analysis.Summarize()
	}
	b.StopTimer()
	b.ReportMetric(float64(s.UniqueURLPaths), "urlPaths(paper:10814)")
	b.ReportMetric(float64(s.UniqueURLPathsSmuggling), "smugglingPaths(paper:850)")
	b.ReportMetric(float64(s.UniqueDomainPathsSmuggling), "domainPaths(paper:321)")
	b.ReportMetric(float64(s.DedicatedSmugglers), "dedicated(paper:27)")
	b.ReportMetric(float64(s.MultiPurposeSmugglers), "multiPurpose(paper:187)")
	b.ReportMetric(float64(s.UniqueOriginators), "originators(paper:265)")
	b.ReportMetric(float64(s.UniqueDestinations), "destinations(paper:224)")
}

// --- Table 3 ----------------------------------------------------------------------

func BenchmarkTable3Redirectors(b *testing.B) {
	r := fixture(b)
	var rows []analysis.RedirectorRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = r.Analysis.TopRedirectors(30)
	}
	b.StopTimer()
	if len(rows) > 0 {
		// The paper's top redirector (adclick.g.doubleclick.net) covered
		// 11.2% of domain paths; report our top share.
		b.ReportMetric(rows[0].PctDomainPaths, "%topRedirector(paper:11.2)")
		b.Logf("top redirectors:")
		for i, row := range rows {
			if i >= 10 {
				break
			}
			mark := ""
			if row.MultiPurpose {
				mark = "*"
			}
			b.Logf("  %2d. %-34s %3d (%.1f%%)%s", i+1, row.Host, row.Count, row.PctDomainPaths, mark)
		}
	}
}

// --- Figure 4 ----------------------------------------------------------------------

func BenchmarkFigure4Organizations(b *testing.B) {
	r := fixture(b)
	at := r.Attributor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = r.Analysis.TopOrganizations(at, 19)
	}
	b.StopTimer()
	origs, dests := r.Analysis.TopOrganizations(at, 5)
	for _, e := range origs {
		b.Logf("originator org: %-28s %d", e.Key, e.Count)
	}
	for _, e := range dests {
		b.Logf("destination org: %-28s %d", e.Key, e.Count)
	}
}

// --- Figure 5 ----------------------------------------------------------------------

func BenchmarkFigure5Categories(b *testing.B) {
	r := fixture(b)
	tax := r.Taxonomy()
	var co, cd map[string]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co, cd = r.Analysis.CategoryBreakdown(tax)
	}
	b.StopTimer()
	// The paper's most common originator category is News/Weather/Information.
	b.ReportMetric(float64(co["News/Weather/Information"]), "newsOriginators")
	b.ReportMetric(float64(cd["Shopping"]), "shoppingDestinations")
	b.Logf("originator categories: %v", co)
	b.Logf("destination categories: %v", cd)
}

// --- Figure 6 ----------------------------------------------------------------------

func BenchmarkFigure6ThirdParties(b *testing.B) {
	r := fixture(b)
	var entries int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries = len(r.Analysis.ThirdPartyReceivers(20))
	}
	b.ReportMetric(float64(entries), "thirdPartyDomains")
	b.StopTimer()
	for _, e := range r.Analysis.ThirdPartyReceivers(5) {
		b.Logf("third party receiving UIDs: %-24s %d requests", e.Key, e.Count)
	}
}

// --- Figure 7 ----------------------------------------------------------------------

func BenchmarkFigure7RedirectorCounts(b *testing.B) {
	r := fixture(b)
	var hist []analysis.RedirectorBucket
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist = r.Analysis.RedirectorHistogram()
	}
	b.StopTimer()
	for _, bucket := range hist {
		b.Logf("%2d redirectors: no-dedicated=%-4d one=%-4d two+=%d",
			bucket.Redirectors, bucket.NoDedicated, bucket.OneDedicated, bucket.TwoPlusDedicated)
	}
	// Shape check the paper emphasises: longer paths have more dedicated
	// smugglers.
	if len(hist) > 2 {
		long := hist[2].OneDedicated + hist[2].TwoPlusDedicated
		b.ReportMetric(float64(long), "dedicatedIn2RedirectorPaths")
	}
}

// --- Figure 8 ----------------------------------------------------------------------

func BenchmarkFigure8PathPortions(b *testing.B) {
	r := fixture(b)
	var portions map[analysis.Portion]analysis.PortionCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		portions = r.Analysis.PathPortions()
	}
	b.StopTimer()
	for _, p := range analysis.Portions {
		pc := portions[p]
		b.Logf("%-42s dedicated=%-4d none=%d", p, pc.WithDedicated, pc.WithoutDedicated)
	}
	full := portions[analysis.PortionFull].Total() + portions[analysis.PortionOriginDest].Total()
	partial := portions[analysis.PortionOriginRed].Total() +
		portions[analysis.PortionRedirDest].Total() + portions[analysis.PortionRedirRedir].Total()
	b.ReportMetric(float64(full), "fullPathUIDs")
	b.ReportMetric(float64(partial), "partialPathUIDs")
}

// --- §5 headline --------------------------------------------------------------------

func BenchmarkHeadlineSmugglingRate(b *testing.B) {
	r := fixture(b)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate = r.Analysis.SmugglingRate()
	}
	b.ReportMetric(100*rate, "%smuggling(paper:8.11)")
}

// --- §8 bounce tracking ---------------------------------------------------------------

func BenchmarkBounceTracking(b *testing.B) {
	r := fixture(b)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rate = r.Analysis.BounceRate()
	}
	b.ReportMetric(100*rate, "%bounce(paper:2.7)")
	b.ReportMetric(100*(rate+r.Analysis.SmugglingRate()), "%combined(paper:10.8)")
}

// --- §5.1 / §7.1: blocklist coverage ----------------------------------------------------

func BenchmarkDisconnectCoverage(b *testing.B) {
	r := fixture(b)
	list := r.DisconnectDomains()
	dedicated := r.Analysis.DedicatedSmugglers()
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap = list.MissingFraction(dedicated)
	}
	b.ReportMetric(100*gap, "%missing(paper:41)")
}

func BenchmarkEasyListCoverage(b *testing.B) {
	r := fixture(b)
	list := r.EasyList()
	urls := r.Analysis.SmugglingURLs()
	var blocked float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blocked = list.BlockedFraction(urls)
	}
	b.ReportMetric(100*blocked, "%blocked(paper:6)")
}

// --- §6: login-page breakage -------------------------------------------------------------

func BenchmarkLoginBreakage(b *testing.B) {
	// A dedicated world with enough token-gated login pages for a
	// ten-page sample, as in the paper.
	cfg := web.SmallConfig()
	cfg.NumSites = 200
	cfg.NumSyncOrgs = 8
	cfg.ConnectFailRate = 0
	summary := loginBreakage(b, cfg, 10)
	b.ReportMetric(float64(summary["no change"]), "unchanged(paper:7)")
	b.ReportMetric(float64(summary["minor visual change"]), "minor(paper:1)")
	b.ReportMetric(float64(summary["missing autofill"]+summary["redirected elsewhere"]), "broken(paper:2)")
}

// --- Ablations ------------------------------------------------------------------------------

// BenchmarkAblationTwoVsFourCrawlers compares prior work's two-crawler
// setup against CrumbCruncher's four (§3.2, §8.1).
func BenchmarkAblationTwoVsFourCrawlers(b *testing.B) {
	r := fixture(b)
	opt := uid.Options{Crawlers: []string{crawler.Safari1, crawler.Safari2}}
	var two []*uid.Case
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		two, _, _ = r.Reidentify(opt)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(r.Cases)), "fourCrawlerUIDs")
	b.ReportMetric(float64(len(two)), "twoCrawlerUIDs")
	b.ReportMetric(precisionOf(r, two), "%twoCrawlerPrecision")
	b.ReportMetric(precisionOf(r, r.Cases), "%fourCrawlerPrecision")
}

// BenchmarkAblationLifetimeVsRepeatCrawler compares the repeat-crawler
// session detection against prior work's 90-day and 30-day cookie
// lifetime thresholds (§3.7.1: 16% / 9% of true UIDs would be lost).
func BenchmarkAblationLifetimeVsRepeatCrawler(b *testing.B) {
	r := fixture(b)
	var l90 []*uid.Case
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l90, _, _ = r.Reidentify(uid.Options{
			DisableRepeatCrawler: true,
			LifetimeThreshold:    90 * 24 * time.Hour,
		})
	}
	b.StopTimer()
	l30, _, _ := r.Reidentify(uid.Options{
		DisableRepeatCrawler: true,
		LifetimeThreshold:    30 * 24 * time.Hour,
	})
	b.ReportMetric(float64(len(r.Cases)), "repeatCrawlerUIDs")
	b.ReportMetric(float64(len(l90)), "lifetime90UIDs")
	b.ReportMetric(float64(len(l30)), "lifetime30UIDs")
	lost := missingTrueCases(r, l90)
	b.ReportMetric(float64(lost), "trueUIDsLostBy90d")
}

// BenchmarkAblationExactVsRatcliff compares exact value equality against
// prior work's Ratcliff/Obershelp fuzzy matching at 33% and 45% slack
// (§8.1).
func BenchmarkAblationExactVsRatcliff(b *testing.B) {
	r := fixture(b)
	var fuzzy33 []*uid.Case
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fuzzy33, _, _ = r.Reidentify(uid.Options{SameSlack: 0.33})
	}
	b.StopTimer()
	fuzzy45, _, _ := r.Reidentify(uid.Options{SameSlack: 0.45})
	b.ReportMetric(float64(len(r.Cases)), "exactMatchUIDs")
	b.ReportMetric(float64(len(fuzzy33)), "slack33UIDs")
	b.ReportMetric(float64(len(fuzzy45)), "slack45UIDs")
	// Structured (GA-style) UIDs share most characters across users, so
	// fuzzy matching wrongly unifies them and the baseline loses true
	// UIDs CrumbCruncher keeps.
	b.ReportMetric(float64(missingTrueCases(r, fuzzy45)), "trueUIDsLostByFuzzy")
}

// BenchmarkAblationSyncHeuristics crawls a small world with each matching
// heuristic disabled and reports the synchronization failure rate (§3.3).
func BenchmarkAblationSyncHeuristics(b *testing.B) {
	variants := []struct {
		name string
		h    crawler.Heuristics
	}{
		{"all", crawler.AllHeuristics},
		{"noHref", crawler.Heuristics{Box: true, XPath: true}},
		{"noBox", crawler.Heuristics{Href: true, XPath: true}},
		{"noXPath", crawler.Heuristics{Href: true, Box: true}},
		{"hrefOnly", crawler.Heuristics{Href: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = syncFailureRate(b, v.h)
			}
			b.ReportMetric(100*rate, "%noMatchSteps")
		})
	}
}

// --- Substrate micro-benchmarks ------------------------------------------------------------

func BenchmarkTokenExtraction(b *testing.B) {
	value := `{"redirect":"http%3A%2F%2Fshop.com%2Fland%3Fzclid%3Ddeadbeef01","meta":{"lang":"en-US","ids":["aabbccdd11223344"]}}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := tokens.Extract("blob", value); len(got) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkElementMatching(b *testing.B) {
	lists := syntheticElementLists(40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := crawler.MatchElements(lists, crawler.AllHeuristics); len(got) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkPathCandidates(b *testing.B) {
	r := fixture(b)
	if len(r.Paths) == 0 {
		b.Skip("no paths")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tokens.FindCandidates(r.Paths[i%len(r.Paths)])
	}
}

// BenchmarkCrawl runs the full small-config pipeline per iteration —
// world build, four-crawler crawl and post-crawl analysis. It is the
// end-to-end number scripts/bench.sh archives, and the one an
// instrumentation change would regress first.
func BenchmarkCrawl(b *testing.B) {
	cfg := crumbcruncher.SmallConfig()
	var run *crumbcruncher.Run
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		run, err = crumbcruncher.NewRunner(cfg).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(run.Dataset.StepCount()), "steps")
	b.ReportMetric(float64(len(run.Cases)), "uid-cases")
}

func BenchmarkCrawlWalk(b *testing.B) {
	cfg := web.SmallConfig()
	cfg.ConnectFailRate = 0
	w := web.BuildWorld(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := crawler.Crawl(crawler.Config{
			Seed:             cfg.Seed,
			Network:          w.Network(),
			Seeders:          w.Seeders(),
			Walks:            1,
			DirectController: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- helpers ----------------------------------------------------------------------------------

func precisionOf(r *crumbcruncher.Run, cases []*uid.Case) float64 {
	if len(cases) == 0 {
		return 0
	}
	tp := 0
	for _, c := range cases {
		if r.World.Truth().IsUIDParam(c.Group.Name) {
			tp++
		}
	}
	return 100 * float64(tp) / float64(len(cases))
}

// missingTrueCases counts true-UID cases of the full method absent from
// the baseline's output.
func missingTrueCases(r *crumbcruncher.Run, baseline []*uid.Case) int {
	key := func(c *uid.Case) string {
		return fmt.Sprintf("%d/%d/%s", c.Group.Walk, c.Group.Step, c.Group.Name)
	}
	have := map[string]bool{}
	for _, c := range baseline {
		have[key(c)] = true
	}
	missing := 0
	for _, c := range r.Cases {
		if r.World.Truth().IsUIDParam(c.Group.Name) && !have[key(c)] {
			missing++
		}
	}
	return missing
}

var (
	syncRateMu    sync.Mutex
	syncRateCache = map[crawler.Heuristics]float64{}
)

// syncFailureRate crawls a small world under a heuristic mask, cached per
// mask so repeated benchmark iterations stay cheap.
func syncFailureRate(b *testing.B, h crawler.Heuristics) float64 {
	syncRateMu.Lock()
	defer syncRateMu.Unlock()
	if rate, ok := syncRateCache[h]; ok {
		return rate
	}
	cfg := web.SmallConfig()
	w := web.BuildWorld(cfg)
	ds, err := crawler.Crawl(crawler.Config{
		Seed:             cfg.Seed,
		Network:          w.Network(),
		Seeders:          w.Seeders(),
		Walks:            60,
		Heuristics:       h,
		DirectController: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	total := ds.StepCount()
	rate := 0.0
	if total > 0 {
		rate = float64(ds.OutcomeCounts()[crawler.OutcomeNoCommonElement]) / float64(total)
	}
	syncRateCache[h] = rate
	return rate
}

// syntheticElementLists builds three near-identical element lists, the
// controller's per-step workload.
func syntheticElementLists(n int) map[string][]crawler.Element {
	mk := func(client int) []crawler.Element {
		var out []crawler.Element
		for i := 0; i < n; i++ {
			e := crawler.Element{
				Index:     i,
				Kind:      "a",
				Href:      fmt.Sprintf("http://site%d.com/p/%d?uid=client%d", i%7, i, client),
				AttrNames: []string{"href", "class"},
				XPath:     fmt.Sprintf("/html[1]/body[1]/div[1]/a[%d]", i+1),
			}
			e.Box.X = 10 * i
			e.Box.W, e.Box.H = 160, 18
			if i%5 == 0 {
				e.Kind = "iframe"
				e.Href = ""
				e.AttrNames = []string{"src", "width", "height"}
				e.Box.W, e.Box.H = 300, 250
			}
			out = append(out, e)
		}
		return out
	}
	return map[string][]crawler.Element{
		crawler.Safari1: mk(1),
		crawler.Safari2: mk(2),
		crawler.Chrome3: mk(3),
	}
}

// loginBreakage runs the §6 experiment over up to n account pages.
func loginBreakage(b *testing.B, cfg web.Config, n int) map[string]int {
	b.Helper()
	w := web.BuildWorld(cfg)
	var pages []string
	for _, s := range w.Sites() {
		if s.HasAccount && len(pages) < n {
			atok := ident.UID(cfg.Seed, s.Domain, "sso", "bench-user")
			pages = append(pages, "http://"+s.Domain+"/account?atok="+atok)
		}
	}
	counts := map[string]int{}
	for i, page := range pages {
		br := browser.New(browser.Config{
			Seed:      cfg.Seed,
			ProfileID: "bench-user",
			ClientID:  fmt.Sprintf("bench-%d", i),
			Machine:   "bench-machine",
			Policy:    storage.Partitioned,
			Network:   w.Network(),
		})
		res := countermeasures.EvaluateBreakage(br, page, func(name, _ string) bool {
			return name == "atok"
		})
		counts[string(res.Class)]++
	}
	return counts
}

// --- §7.1: Safari ITP-style classification ------------------------------------

// BenchmarkITPClassifier measures Safari's heuristic tracker classifier
// over the crawl's navigation paths: how many hosts it flags and how much
// of the dedicated-smuggler population it covers.
func BenchmarkITPClassifier(b *testing.B) {
	r := fixture(b)
	var classified []string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		itp := countermeasures.NewITPClassifier()
		for _, p := range r.Paths {
			itp.ObservePath(p)
		}
		classified = itp.Classified()
	}
	b.StopTimer()
	set := map[string]bool{}
	for _, h := range classified {
		set[h] = true
	}
	dedicated := r.Analysis.DedicatedSmugglers()
	covered := 0
	for _, h := range dedicated {
		if set[h] {
			covered++
		}
	}
	b.ReportMetric(float64(len(classified)), "hostsClassified")
	if len(dedicated) > 0 {
		b.ReportMetric(100*float64(covered)/float64(len(dedicated)), "%dedicatedCovered")
	}
}

// --- §7: countermeasure effectiveness -------------------------------------------

// BenchmarkCountermeasureEffectiveness measures, over the observed
// smuggling URLs, how many Brave-style debouncing rewrites and how many
// the paper's query-stripping mitigation cleans.
func BenchmarkCountermeasureEffectiveness(b *testing.B) {
	r := fixture(b)
	urls := r.Analysis.SmugglingURLs()
	known := map[string]bool{}
	for _, p := range r.Analysis.SmugglerParamNames() {
		known[p] = true
	}
	deb := countermeasures.NewDebouncer(r.Analysis.DedicatedSmugglers(), r.Analysis.SmugglerParamNames())
	var debounced, stripped int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		debounced, stripped = 0, 0
		for _, raw := range urls {
			if deb.Debounce(raw).Debounced {
				debounced++
			}
			if countermeasures.StripSuspectedUIDs(raw, known) != raw {
				stripped++
			}
		}
	}
	b.StopTimer()
	if len(urls) > 0 {
		b.ReportMetric(100*float64(debounced)/float64(len(urls)), "%debounced")
		b.ReportMetric(100*float64(stripped)/float64(len(urls)), "%stripped")
	}
}

// BenchmarkAblationSequentialBaseline compares prior work's sequential
// single-crawler user simulation (Koop et al., §8.1) against
// CrumbCruncher's synchronized crawlers on the same world: without
// synchronization, nothing guarantees a site is observed by more than one
// user, so a large share of tokens is unconfirmable and must be dropped.
func BenchmarkAblationSequentialBaseline(b *testing.B) {
	var seqStats uid.SequentialStats
	var seqCases []*uid.Case
	var syncCases int
	for i := 0; i < b.N; i++ {
		cfg := web.SmallConfig()
		cfg.NumSites = 120
		world := web.BuildWorld(cfg)
		ccfg := crawler.Config{
			Seed:             cfg.Seed,
			Network:          world.Network(),
			Seeders:          world.Seeders(),
			Walks:            80,
			DirectController: true,
		}
		seqDS, err := crawler.SequentialCrawl(ccfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		seqPaths := tokens.PathsFromDataset(seqDS)
		seqIdx := uid.BuildLifetimeIndex(seqDS)
		seqCases, seqStats = uid.SequentialIdentify(
			tokens.AllCandidates(seqPaths), seqIdx.Lifetime, 90*24*time.Hour)

		// The synchronized system on a fresh identical world.
		world2 := web.BuildWorld(cfg)
		ccfg.Network = world2.Network()
		ccfg.Seeders = world2.Seeders()
		syncDS, err := crawler.Crawl(ccfg)
		if err != nil {
			b.Fatal(err)
		}
		syncPaths := tokens.PathsFromDataset(syncDS)
		cases, _ := uid.Identify(tokens.AllCandidates(syncPaths), uid.Options{})
		syncCases = len(cases)
	}
	b.ReportMetric(float64(len(seqCases)), "sequentialUIDs")
	b.ReportMetric(float64(syncCases), "synchronizedUIDs")
	b.ReportMetric(float64(seqStats.SingleUser), "unconfirmableSingleUser")
}

// --- §6: referer-based smuggling (the pipeline's designed blind spot) -----------

// BenchmarkLimitationRefererSmuggling counts UID transfers riding the
// Referer header, which the pipeline cannot see (§6: CrumbCruncher only
// inspects navigation URL query parameters). Ground truth makes the
// blind spot measurable.
func BenchmarkLimitationRefererSmuggling(b *testing.B) {
	r := fixture(b)
	var missed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		missed = r.MissedRefererTransfers()
	}
	b.ReportMetric(float64(missed), "invisibleRefererTransfers")
	b.ReportMetric(float64(len(r.Cases)), "visibleUIDCases")
}

// --- Streaming execution engine ----------------------------------------------

// BenchmarkExecuteStreaming compares the streaming engine (walks flow
// into analysis as they finish) against the batch path (crawl fully,
// then analyze) on the same seed at worker-pool sizes 1 and 4. Both
// produce byte-identical metrics (see TestStreamingMatchesBatch); the
// streaming variant should come in at or below batch wall-clock at
// parallelism ≥ 4 by absorbing the serial post-crawl analysis tail
// into the crawl, with peak live residency at or below batch's (both
// engines end holding the same fully-materialized Run).
//
// Each engine runs as its own sub-benchmark (stream/batch), so ns/op,
// B/op and allocs/op are attributable to one engine — the previous
// shape ran both engines inside every iteration, and the headline
// ns/op double-counted while the memory columns summed two engines.
// Peak live residency is still reported per engine as a metric;
// scripts/bench.sh archives the series in BENCH_*.json.
func BenchmarkExecuteStreaming(b *testing.B) {
	base := crumbcruncher.SmallConfig()
	base.Walks = 120
	engines := []struct {
		name  string
		batch bool
	}{
		{"stream", false},
		{"batch", true},
	}
	for _, par := range []int{1, 4} {
		for _, eng := range engines {
			b.Run(fmt.Sprintf("parallelism-%d/%s", par, eng.name), func(b *testing.B) {
				cfg := base
				cfg.Parallelism = par
				cfg.BatchAnalysis = eng.batch
				var peak float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					runtime.GC()
					w := newHeapWatermark()
					b.StartTimer()
					if _, err := crumbcruncher.NewRunner(cfg).Run(context.Background()); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					peak += w.stop()
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(peak/float64(b.N), "peak-heap-MB")
			})
		}
	}
}

// heapWatermark periodically forces a collection and samples the heap
// that survives it, keeping the high-water mark: peak *live* residency,
// not the GC sawtooth's amplitude (raw HeapAlloc peaks measure mostly
// collector pacing and flip sign between identical runs). The forced
// collections cost a few percent of wall-clock, paid equally by every
// variant under comparison.
type heapWatermark struct {
	done chan struct{}
	out  chan float64
}

func newHeapWatermark() *heapWatermark {
	w := &heapWatermark{done: make(chan struct{}), out: make(chan float64, 1)}
	go func() {
		var peak uint64
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.done:
				w.out <- float64(peak) / (1 << 20)
				return
			case <-tick.C:
				runtime.GC()
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

func (w *heapWatermark) stop() float64 {
	close(w.done)
	return <-w.out
}

// --- Parallel post-crawl analysis --------------------------------------------

// BenchmarkAnalyzeParallel re-runs the entire post-crawl pipeline (path
// reconstruction, candidate extraction, UID identification, aggregation)
// over the paper-scale fixture crawl at worker-pool sizes 1 and NumCPU.
// Results are bit-identical at every size (see
// TestParallelAnalysisDeterminism); the parallel variant should show the
// near-linear speedup the sharded pipeline is built for.
func BenchmarkAnalyzeParallel(b *testing.B) {
	r := fixture(b)
	pars := []int{1, runtime.NumCPU()}
	if runtime.NumCPU() == 1 {
		// Single-core machine: the speedup is unmeasurable, but still
		// benchmark the concurrent path so its overhead stays visible.
		pars = []int{1, 4}
	}
	for _, par := range pars {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			cfg := r.Config
			cfg.Parallelism = par
			b.ResetTimer()
			var out *crumbcruncher.Run
			for i := 0; i < b.N; i++ {
				var err error
				out, err = crumbcruncher.NewRunner(cfg).Reanalyze(context.Background(), r)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(out.Cases)), "uid-cases")
		})
	}
}
