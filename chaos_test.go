package crumbcruncher_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"crumbcruncher"
	"crumbcruncher/internal/chaos"
	"crumbcruncher/internal/runio"
)

// chaosConfig is the small deterministic run every chaos scenario
// crashes and resumes. Parallelism 1 keeps the resumed schedule
// byte-identical to the uninterrupted one.
func chaosConfig() crumbcruncher.Config {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = 11
	cfg.Walks = 20
	cfg.Parallelism = 1
	return cfg
}

// runToCrash executes a checkpointed streaming run with inj installed
// at the write boundary, canceling the run the instant the injector's
// crash point fires — the in-process equivalent of the process dying
// mid-run. Returns once the run has unwound.
func runToCrash(t *testing.T, cfg crumbcruncher.Config, ckptPath string, inj *chaos.Injector) {
	t.Helper()
	ckpt, err := crumbcruncher.OpenCheckpoint(ckptPath, cfg.World.Seed)
	if err != nil {
		t.Fatal(err)
	}
	runio.SetFault(inj)
	defer runio.SetFault(nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-inj.Crashed():
			cancel()
		case <-done:
		}
	}()

	if _, err := crumbcruncher.NewRunner(cfg, crumbcruncher.WithCheckpoint(ckpt)).Run(ctx); err == nil {
		t.Fatal("crashed run returned no error")
	}
	select {
	case <-inj.Crashed():
	default:
		t.Fatal("run failed before the chaos point fired")
	}
	ckpt.Close() //nolint:errcheck // the "process" is dead; state is on disk
}

// resumeAndVerify reopens the checkpoint (recovering whatever the crash
// left), finishes the run, and asserts the metrics are byte-identical
// to the uninterrupted reference.
func resumeAndVerify(t *testing.T, cfg crumbcruncher.Config, ckptPath string, want []byte) {
	t.Helper()
	tel := crumbcruncher.NewTelemetry()
	ckpt, err := crumbcruncher.OpenCheckpointTel(ckptPath, cfg.World.Seed, tel)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	run, err := crumbcruncher.NewRunner(cfg,
		crumbcruncher.WithCheckpoint(ckpt),
		crumbcruncher.WithTelemetry(tel),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsBytes(t, run); !bytes.Equal(got, want) {
		t.Error("resumed run's metrics differ from the uninterrupted run")
	}
}

// TestChaosCrashRecoverVerify kills a streaming run at seeded chaos
// points — torn checkpoint appends of varying severity, a sidecar tear,
// an fsync-time crash — then resumes from the surviving disk state and
// requires metrics byte-identical to a clean run.
func TestChaosCrashRecoverVerify(t *testing.T) {
	cfg := chaosConfig()
	ref, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := metricsBytes(t, ref)

	points := []struct {
		name string
		cfg  chaos.Config
		// sync overrides the process fsync policy for the scenario
		// (zero: leave the default interval policy).
		sync runio.SyncPolicy
	}{
		{name: "torn checkpoint record, nothing lands", cfg: chaos.Config{Seed: 1, Target: runio.CheckpointFormat, CrashAtRecord: 4, TearBytes: 0}},
		{name: "torn checkpoint record, partial frame", cfg: chaos.Config{Seed: 2, Target: runio.CheckpointFormat, CrashAtRecord: 6, TearBytes: 11}},
		{name: "torn checkpoint record, partial payload", cfg: chaos.Config{Seed: 3, Target: runio.CheckpointFormat, CrashAtRecord: 3, TearBytes: 40}},
		{name: "torn analysis sidecar record", cfg: chaos.Config{Seed: 4, Target: runio.AnalysisFormat, CrashAtRecord: 5, TearBytes: 25}},
		// Under -fsync every-record each append syncs, so sync 2 is the
		// first walk entry's fsync — a crash point mid-run.
		{name: "crash at checkpoint fsync", cfg: chaos.Config{Seed: 5, Target: runio.CheckpointFormat, CrashAtSync: 2}, sync: runio.SyncEveryRecord},
	}
	for _, p := range points {
		t.Run(p.name, func(t *testing.T) {
			if p.sync != runio.SyncDefault {
				runio.SetDefaultSyncPolicy(p.sync)
				defer runio.SetDefaultSyncPolicy(runio.SyncInterval)
			}
			ckptPath := filepath.Join(t.TempDir(), "ckpt.jsonl")
			runToCrash(t, cfg, ckptPath, chaos.New(p.cfg))
			resumeAndVerify(t, cfg, ckptPath, want)
		})
	}
}

// TestChaosCorruptCheckpointQuarantined flips a bit in a recorded
// checkpoint entry (latent damage: the interrupted run never notices),
// then verifies the resume path refuses the corrupt walks — quarantine,
// typed error, fresh restart — and still converges to clean metrics.
func TestChaosCorruptCheckpointQuarantined(t *testing.T) {
	cfg := chaosConfig()
	ref, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := metricsBytes(t, ref)

	ckptPath := filepath.Join(t.TempDir(), "ckpt.jsonl")
	inj := chaos.New(chaos.Config{Seed: 9, Target: runio.CheckpointFormat, FlipAtRecord: 3})
	runio.SetFault(inj)
	ckpt, err := crumbcruncher.OpenCheckpoint(ckptPath, cfg.World.Seed)
	if err != nil {
		runio.SetFault(nil)
		t.Fatal(err)
	}
	// The flip is latent: the run completes normally, with the damage
	// sitting in the checkpoint file.
	if _, err := crumbcruncher.NewRunner(cfg, crumbcruncher.WithCheckpoint(ckpt)).Run(context.Background()); err != nil {
		runio.SetFault(nil)
		t.Fatal(err)
	}
	ckpt.Close()
	runio.SetFault(nil)

	// Resume: never silently skip the corrupt record. The file is
	// quarantined and the open reports exactly where the damage is.
	_, err = crumbcruncher.OpenCheckpoint(ckptPath, cfg.World.Seed)
	var dmg *runio.DamageError
	if !errors.As(err, &dmg) || !errors.Is(err, runio.ErrCorrupt) {
		t.Fatalf("corrupt checkpoint not classified: %v", err)
	}
	if dmg.Quarantined == "" {
		t.Fatal("corrupt checkpoint not quarantined")
	}

	// A fresh start from the now-clean path reproduces the clean run.
	resumeAndVerify(t, cfg, ckptPath, want)
}
