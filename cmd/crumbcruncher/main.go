// Command crumbcruncher runs the full measurement pipeline: build the
// synthetic web, crawl it with the four synchronized crawlers, identify
// smuggled UIDs and print the paper's tables and figures.
//
// Usage:
//
//	crumbcruncher [-seed N] [-sites N] [-walks N] [-steps N] [-parallel N]
//	              [-machines N] [-small] [-lazy] [-batch] [-save crawl.json]
//	              [-out report.txt] [-trace trace.jsonl] [-progress]
//	              [-pprof localhost:6060] [-retries N] [-breaker N]
//	              [-deadline D] [-resume ckpt.jsonl] [-fsync POLICY]
//	              [-connect-fail R] [-transient-fail R] [-degrade R]
//	              [-spike R]
//
// An interrupted run (Ctrl-C or a crash) drains gracefully; with
// -resume it can be continued later from the same checkpoint file. A
// checkpoint torn by a crash mid-write recovers automatically (the
// partial record is dropped); a corrupt one is quarantined to
// "<path>.corrupt" and the run restarts from scratch rather than trust
// damaged walks. -fsync bounds how much a crash can lose: "never",
// "interval" (default: every 32 records or 1 MiB) or "every-record".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync/atomic"
	"time"

	"crumbcruncher"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbcruncher: ")

	var (
		seed      = flag.Int64("seed", 1, "world seed (every run with the same seed and flags is identical)")
		sites     = flag.Int("sites", 0, "number of content sites (0: config default)")
		walks     = flag.Int("walks", 0, "number of random walks (0: config default)")
		steps     = flag.Int("steps", 0, "steps per walk (0: the paper's 10)")
		parallel  = flag.Int("parallel", 0, "worker-pool size for the crawl and the post-crawl analysis (0: config default)")
		machines  = flag.Int("machines", 0, "simulated crawl machines walks are spread across (0: config default)")
		small     = flag.Bool("small", false, "use the small demo configuration")
		lazy      = flag.Bool("lazy", false, "generate sites on first visit instead of upfront (identical results; million-domain worlds in laptop memory)")
		batch     = flag.Bool("batch", false, "run analysis as a separate batch phase after the crawl instead of streaming")
		savePath  = flag.String("save", "", "save the crawl to this path (.crumbs: sharded gzip segment store; otherwise one line file)")
		outPath   = flag.String("out", "", "write the report here instead of stdout")
		metrics   = flag.Bool("metrics", false, "emit machine-readable JSON metrics instead of the text report")
		traceOut  = flag.String("trace", "", "enable telemetry and export the span trace to this JSONL file (inspect with crumbtrace)")
		progress  = flag.Bool("progress", false, "enable telemetry and report crawl progress on stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")

		retries   = flag.Int("retries", 0, "max attempts per navigation/click with virtual-clock exponential backoff (0: no retries)")
		breaker   = flag.Int("breaker", 0, "per-domain circuit breaker: open after N consecutive failed retry sequences (0: disabled)")
		deadline  = flag.Duration("deadline", 0, "per-request virtual-clock deadline (0: none)")
		resume    = flag.String("resume", "", "checkpoint file: record completed walks, and resume from it if it exists")
		fsyncMode = flag.String("fsync", "interval", "fsync policy for checkpoints and sidecars: never, interval, every-record")
		connFail  = flag.Float64("connect-fail", -1, "fraction of domains refusing connections (-1: config default, paper 3.3%)")
		transient = flag.Float64("transient-fail", 0, "fraction of domains whose first attempts fail then recover")
		degrade   = flag.Float64("degrade", 0, "fraction of domains answering first attempts with 502/503 + Retry-After")
		spike     = flag.Float64("spike", 0, "fraction of domains with a deadline-blowing first-attempt latency spike")
	)
	flag.Parse()

	cfg := crumbcruncher.DefaultConfig()
	if *small {
		cfg = crumbcruncher.SmallConfig()
	}
	cfg.World.Seed = *seed
	if *sites > 0 {
		cfg.World.NumSites = *sites
	}
	if *walks > 0 {
		cfg.Walks = *walks
	}
	if *steps > 0 {
		cfg.StepsPerWalk = *steps
	}
	if *parallel > 0 {
		cfg.Parallelism = *parallel
	}
	if *machines > 0 {
		cfg.Machines = *machines
	}
	cfg.World.Lazy = *lazy
	cfg.BatchAnalysis = *batch
	var opts []crumbcruncher.Option
	if *retries > 0 {
		rp := crumbcruncher.DefaultRetryPolicy()
		rp.MaxAttempts = *retries
		opts = append(opts, crumbcruncher.WithRetryPolicy(rp))
	}
	if *breaker > 0 {
		cfg.Breaker.Threshold = *breaker
	}
	if *deadline > 0 {
		cfg.RequestDeadline = *deadline
	}
	if *connFail >= 0 {
		cfg.World.ConnectFailRate = *connFail
	}
	cfg.World.TransientFailRate = *transient
	cfg.World.HTTPDegradeRate = *degrade
	cfg.World.LatencySpikeRate = *spike

	policy, ok := runio.ParseSyncPolicy(*fsyncMode)
	if !ok {
		log.Fatalf("bad -fsync %q: want never, interval or every-record", *fsyncMode)
	}
	runio.SetDefaultSyncPolicy(policy)

	// Telemetry is observation-only: results are identical with it on or
	// off, so it is attached exactly when some flag consumes it.
	var tel *crumbcruncher.Telemetry
	if *traceOut != "" || *progress {
		tel = crumbcruncher.NewTelemetry()
		opts = append(opts, crumbcruncher.WithTelemetry(tel))
	}

	var ckpt *crumbcruncher.Checkpoint
	if *resume != "" {
		var err error
		ckpt, err = crumbcruncher.OpenCheckpointTel(*resume, cfg.World.Seed, tel)
		if errors.Is(err, runio.ErrCorrupt) {
			// The damaged checkpoint has been quarantined; crawl from
			// scratch rather than resume from corrupt walks.
			fmt.Fprintf(os.Stderr, "checkpoint damaged, starting fresh: %v\n", err)
			ckpt, err = crumbcruncher.OpenCheckpointTel(*resume, cfg.World.Seed, tel)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer ckpt.Close()
		if rec := ckpt.Recovery(); rec.DroppedTail {
			fmt.Fprintf(os.Stderr, "checkpoint recovered: dropped a torn %d-byte tail, kept %d walks\n",
				rec.TornBytes, rec.Records)
		}
		if n := ckpt.CompletedCount(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d walks already completed in %s\n", n, *resume)
		}
		opts = append(opts, crumbcruncher.WithCheckpoint(ckpt))
	}
	if *pprofAddr != "" {
		// Bind synchronously so a bad address is a startup error, not a
		// log line racing the run; the listener closes with the process.
		bound, stopDebug, err := serve.StartDebug(*pprofAddr, nil)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", bound)
	}

	start := time.Now() //crumb:allow wallclock CLI progress line; stderr only, never in results
	fmt.Fprintf(os.Stderr, "crawling %d walks over %d sites (seed %d)...\n",
		cfg.Walks, cfg.World.NumSites, cfg.World.Seed)
	stopProgress := func() {}
	if *progress {
		var latest atomic.Value
		latest.Store(crumbcruncher.Progress{})
		opts = append(opts, crumbcruncher.WithProgress(func(p crumbcruncher.Progress) { latest.Store(p) }))
		stopProgress = reportProgress(tel, &latest)
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	run, err := crumbcruncher.NewRunner(cfg, opts...).Run(ctx)
	stopSignals()
	stopProgress()
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "interrupted: crawl drained gracefully")
		if *resume != "" {
			fmt.Fprintf(os.Stderr, "re-run with -resume %s to continue\n", *resume)
		} else {
			fmt.Fprintln(os.Stderr, "hint: run with -resume ckpt.jsonl to make interrupted crawls resumable")
		}
		ckpt.Close()
		os.Exit(1)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "crawl + analysis finished in %v: %d steps, %d candidate tokens, %d confirmed UIDs\n",
		time.Since(start).Round(time.Millisecond), run.Dataset.StepCount(), len(run.Candidates), len(run.Cases)) //crumb:allow wallclock CLI progress line; stderr only, never in results
	if *traceOut != "" {
		if err := crumbcruncher.WriteTrace(*traceOut, tel); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d spans)\n", *traceOut, tel.Tracer().Total())
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *metrics {
		if err := crumbcruncher.WriteMetricsJSON(out, run); err != nil {
			log.Fatal(err)
		}
	} else {
		crumbcruncher.WriteReport(out, run)
	}

	if *savePath != "" {
		if err := crumbcruncher.SaveRunStore(*savePath, run); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dataset saved to %s\n", *savePath)
	}
}

// reportProgress prints crawl progress to stderr once a second until the
// returned stop function is called. It reads only the runner's Progress
// snapshots and telemetry instruments, so it never perturbs the crawl.
func reportProgress(tel *crumbcruncher.Telemetry, latest *atomic.Value) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(time.Second) //crumb:allow wallclock real once-a-second progress cadence on stderr
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				p := latest.Load().(crumbcruncher.Progress)
				reqs := tel.Counter("netsim.requests").Value()
				fails := tel.Counter("netsim.failures").Value()
				fmt.Fprintf(os.Stderr, "progress: %d/%d walks crawled, %d analyzed (queue %d), %d requests (%d failed)\n",
					p.WalksDone, p.WalksTotal, p.WalksAnalyzed, p.QueueDepth, reqs, fails)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
