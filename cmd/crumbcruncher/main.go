// Command crumbcruncher runs the full measurement pipeline: build the
// synthetic web, crawl it with the four synchronized crawlers, identify
// smuggled UIDs and print the paper's tables and figures.
//
// Usage:
//
//	crumbcruncher [-seed N] [-sites N] [-walks N] [-steps N] [-parallel N]
//	              [-machines N] [-small] [-save crawl.json] [-out report.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"crumbcruncher"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbcruncher: ")

	var (
		seed     = flag.Int64("seed", 1, "world seed (every run with the same seed and flags is identical)")
		sites    = flag.Int("sites", 0, "number of content sites (0: config default)")
		walks    = flag.Int("walks", 0, "number of random walks (0: config default)")
		steps    = flag.Int("steps", 0, "steps per walk (0: the paper's 10)")
		parallel = flag.Int("parallel", 0, "worker-pool size for the crawl and the post-crawl analysis (0: config default)")
		machines = flag.Int("machines", 0, "simulated crawl machines walks are spread across (0: config default)")
		small    = flag.Bool("small", false, "use the small demo configuration")
		savePath = flag.String("save", "", "save the crawl dataset to this JSON file")
		outPath  = flag.String("out", "", "write the report here instead of stdout")
		metrics  = flag.Bool("metrics", false, "emit machine-readable JSON metrics instead of the text report")
	)
	flag.Parse()

	cfg := crumbcruncher.DefaultConfig()
	if *small {
		cfg = crumbcruncher.SmallConfig()
	}
	cfg.World.Seed = *seed
	if *sites > 0 {
		cfg.World.NumSites = *sites
	}
	if *walks > 0 {
		cfg.Walks = *walks
	}
	if *steps > 0 {
		cfg.StepsPerWalk = *steps
	}
	if *parallel > 0 {
		cfg.Parallelism = *parallel
	}
	if *machines > 0 {
		cfg.Machines = *machines
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "crawling %d walks over %d sites (seed %d)...\n",
		cfg.Walks, cfg.World.NumSites, cfg.World.Seed)
	run, err := crumbcruncher.Execute(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "crawl + analysis finished in %v: %d steps, %d candidate tokens, %d confirmed UIDs\n",
		time.Since(start).Round(time.Millisecond), run.Dataset.StepCount(), len(run.Candidates), len(run.Cases))

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *metrics {
		if err := crumbcruncher.WriteMetricsJSON(out, run); err != nil {
			log.Fatal(err)
		}
	} else {
		crumbcruncher.WriteReport(out, run)
	}

	if *savePath != "" {
		if err := crumbcruncher.SaveRun(*savePath, run); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dataset saved to %s\n", *savePath)
	}
}
