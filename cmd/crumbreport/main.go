// Command crumbreport re-analyses a saved crawl (produced with
// crumbcruncher -save) and prints the full report, optionally with
// alternative UID-identification settings — the prior-work baselines the
// paper compares against. Runs are read through the RunStore API, so a
// 100k-walk segment store streams walk by walk through the analysis
// pipeline instead of being decoded into memory at once.
//
// Usage:
//
//	crumbreport -in crawl.json [-metrics] [-parallel N] [-two-crawlers]
//	            [-no-repeat] [-lifetime-days N] [-ratcliff-slack F]
//	            [-skip-manual]
//	crumbreport -in crawl.crumbs -walk 17        # dump one walk as JSON
//	crumbreport -in crawl.crumbs -limit 5        # dump the first 5 walks
//	crumbreport -in crawl.crumbs -walk 17 -limit 3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log"
	"os"
	"time"

	"crumbcruncher"
	"crumbcruncher/internal/crawler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbreport: ")

	var (
		in       = flag.String("in", "", "saved crawl: line file, .crumbs segment dir, or legacy document (required)")
		metrics  = flag.Bool("metrics", false, "emit metrics JSON instead of the text report")
		walkIdx  = flag.Int("walk", -1, "dump walk N as JSON and exit (no analysis)")
		limit    = flag.Int("limit", 0, "with -walk: dump N consecutive walks; alone: dump the first N walks")
		par      = flag.Int("parallel", 0, "analysis worker-pool size (0: the saved config's; results identical)")
		twoCrawl = flag.Bool("two-crawlers", false, "prior-work baseline: use only Safari-1 and Safari-2")
		noRepeat = flag.Bool("no-repeat", false, "disable session-ID elimination via Safari-1R")
		lifetime = flag.Int("lifetime-days", 0, "prior-work baseline: discard tokens with cookie lifetime under N days")
		slack    = flag.Float64("ratcliff-slack", 0, "prior-work baseline: Ratcliff/Obershelp similarity slack for 'same value' (e.g. 0.33)")
		skipMan  = flag.Bool("skip-manual", false, "disable the lexicon (manual review) stage")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	st, err := crumbcruncher.OpenRunStore(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close() //nolint:errcheck // read-only handle; process is exiting

	// Spot inspection: print raw walks straight from the store — no
	// world rebuild, no analysis, O(one segment) memory.
	if *walkIdx >= 0 || *limit > 0 {
		if err := dumpWalks(os.Stdout, st, *walkIdx, *limit); err != nil {
			log.Fatal(err)
		}
		return
	}

	run, err := crumbcruncher.AnalyzeStore(context.Background(), st)
	if err != nil {
		log.Fatal(err)
	}
	if *par > 0 && *par != run.Config.Parallelism {
		cfg := run.Config
		cfg.Parallelism = *par
		if run, err = crumbcruncher.ReanalyzeContext(context.Background(), cfg, run); err != nil {
			log.Fatal(err)
		}
	}

	opt := crumbcruncher.IdentifyOptions{
		DisableRepeatCrawler: *noRepeat,
		SameSlack:            *slack,
		SkipManual:           *skipMan,
	}
	if *twoCrawl {
		opt.Crawlers = []string{crawler.Safari1, crawler.Safari2}
	}
	if *lifetime > 0 {
		opt.LifetimeThreshold = time.Duration(*lifetime) * 24 * time.Hour
	}
	if *twoCrawl || *noRepeat || *lifetime > 0 || *slack > 0 || *skipMan {
		cases, stats, an := run.Reidentify(opt)
		run.Cases, run.Stats, run.Analysis = cases, stats, an
	}

	if *metrics {
		if err := crumbcruncher.WriteMetricsJSON(os.Stdout, run); err != nil {
			log.Fatal(err)
		}
		return
	}
	crumbcruncher.WriteReport(os.Stdout, run)
}

// dumpWalks prints walks from the store as indented JSON, one document
// per walk. walkIdx < 0 dumps the first limit walks by cursor; walkIdx
// >= 0 dumps max(limit, 1) consecutive walks starting there.
func dumpWalks(w io.Writer, st crumbcruncher.RunStore, walkIdx, limit int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if walkIdx < 0 {
		cur := st.Iter()
		defer cur.Close() //nolint:errcheck // read-only cursor
		for n := 0; n < limit; n++ {
			walk, err := cur.Next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			if err := enc.Encode(walk); err != nil {
				return err
			}
		}
		return nil
	}
	if limit < 1 {
		limit = 1
	}
	for idx := walkIdx; idx < walkIdx+limit; idx++ {
		walk, err := st.Get(idx)
		if err != nil {
			return err
		}
		if err := enc.Encode(walk); err != nil {
			return err
		}
	}
	return nil
}
