// Command crumbreport re-analyses a saved crawl dataset (produced with
// crumbcruncher -save) and prints the full report, optionally with
// alternative UID-identification settings — the prior-work baselines the
// paper compares against.
//
// Usage:
//
//	crumbreport -in crawl.json [-parallel N] [-two-crawlers] [-no-repeat]
//	            [-lifetime-days N] [-ratcliff-slack F] [-skip-manual]
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"time"

	"crumbcruncher"
	"crumbcruncher/internal/crawler"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbreport: ")

	var (
		in       = flag.String("in", "", "saved crawl JSON (required)")
		par      = flag.Int("parallel", 0, "analysis worker-pool size (0: the saved config's; results identical)")
		twoCrawl = flag.Bool("two-crawlers", false, "prior-work baseline: use only Safari-1 and Safari-2")
		noRepeat = flag.Bool("no-repeat", false, "disable session-ID elimination via Safari-1R")
		lifetime = flag.Int("lifetime-days", 0, "prior-work baseline: discard tokens with cookie lifetime under N days")
		slack    = flag.Float64("ratcliff-slack", 0, "prior-work baseline: Ratcliff/Obershelp similarity slack for 'same value' (e.g. 0.33)")
		skipMan  = flag.Bool("skip-manual", false, "disable the lexicon (manual review) stage")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	run, err := crumbcruncher.LoadRun(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *par > 0 && *par != run.Config.Parallelism {
		cfg := run.Config
		cfg.Parallelism = *par
		if run, err = crumbcruncher.ReanalyzeContext(context.Background(), cfg, run); err != nil {
			log.Fatal(err)
		}
	}

	opt := crumbcruncher.IdentifyOptions{
		DisableRepeatCrawler: *noRepeat,
		SameSlack:            *slack,
		SkipManual:           *skipMan,
	}
	if *twoCrawl {
		opt.Crawlers = []string{crawler.Safari1, crawler.Safari2}
	}
	if *lifetime > 0 {
		opt.LifetimeThreshold = time.Duration(*lifetime) * 24 * time.Hour
	}
	if *twoCrawl || *noRepeat || *lifetime > 0 || *slack > 0 || *skipMan {
		cases, stats, an := run.Reidentify(opt)
		run.Cases, run.Stats, run.Analysis = cases, stats, an
	}

	crumbcruncher.WriteReport(os.Stdout, run)
}
