// Command crumbweb inspects the deterministic synthetic web and can serve
// it over real HTTP for exploration: requests are routed by Host header,
// so `curl -H "Host: <domain>" http://localhost:8080/` renders any page
// exactly as the crawlers see it.
//
// Usage:
//
//	crumbweb [-seed N] [-sites N] [-small]                # print inventory
//	crumbweb -domain example.com                          # one site's detail
//	crumbweb -listen :8080                                # serve the world
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"crumbcruncher/internal/tranco"
	"crumbcruncher/internal/web"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbweb: ")

	var (
		seed    = flag.Int64("seed", 1, "world seed")
		sites   = flag.Int("sites", 0, "number of content sites (0: default)")
		small   = flag.Bool("small", false, "small demo world")
		domain  = flag.String("domain", "", "print one site's detail")
		listen  = flag.String("listen", "", "serve the world over HTTP on this address")
		trancoF = flag.Bool("tranco", false, "print the world's seeder ranking in Tranco CSV format")
	)
	flag.Parse()

	cfg := web.DefaultConfig()
	if *small {
		cfg = web.SmallConfig()
	}
	cfg.Seed = *seed
	if *sites > 0 {
		cfg.NumSites = *sites
	}
	world := web.BuildWorld(cfg)

	switch {
	case *trancoF:
		if err := tranco.Write(os.Stdout, tranco.FromDomains(world.Seeders())); err != nil {
			log.Fatal(err)
		}
	case *listen != "":
		serve(world, *listen)
	case *domain != "":
		printSite(world, *domain)
	default:
		printInventory(world)
	}
}

func printInventory(w *web.World) {
	fmt.Printf("synthetic web: %d sites, %d trackers (seed %d)\n\n",
		len(w.Sites()), len(w.Trackers()), w.Config().Seed)

	fmt.Println("TRACKERS")
	for _, t := range w.Trackers() {
		smuggles := ""
		if t.Smuggles {
			smuggles = " [smuggles]"
		}
		fmt.Printf("  %-18s %-22s param=%-14s clicks=%s%s\n",
			t.Kind, t.Domain, t.Param, strings.Join(t.ClickHosts, ","), smuggles)
	}

	fmt.Println("\nTOP 25 SITES")
	for i, d := range w.Seeders() {
		if i >= 25 {
			break
		}
		s := w.Site(d)
		extras := ""
		if s.SyncTracker != nil {
			extras += " sync-org"
		}
		if s.SSOHost != "" {
			extras += " sso=" + s.SSOHost
		}
		if s.ShortenerHost != "" {
			extras += " shortener=" + s.ShortenerHost
		}
		if s.Fingerprinting {
			extras += " fingerprinting"
		}
		fmt.Printf("  #%-3d %-28s %-10s %-26s ads=%d%s\n",
			s.Rank, s.Domain, s.Kind, s.Category, s.AdSlots, extras)
	}

	fmt.Printf("\nLISTS: disconnect=%d domains, easylist=%d rules, entity list=%d orgs, fingerprinters=%d sites\n",
		len(w.DisconnectList()), len(w.EasyListRules()), len(w.EntityListDomains()), len(w.Fingerprinters()))
}

func printSite(w *web.World, domain string) {
	s := w.Site(domain)
	if s == nil {
		log.Fatalf("no site %q in this world", domain)
	}
	fmt.Printf("%s (rank %d, %s, %s, org %q)\n", s.Domain, s.Rank, s.Kind, s.Category, s.Org)
	for _, t := range s.Decorators {
		fmt.Printf("  decorator: %s (param %s, ttl %dd)\n", t.Domain, t.Param, t.TTLDays)
	}
	for _, t := range s.AdNetworks {
		fmt.Printf("  ad network: %s (%d campaigns)\n", t.Domain, len(t.Campaigns))
	}
	for _, t := range s.Analytics {
		fmt.Printf("  analytics: %s\n", t.Domain)
	}
	for _, c := range s.Collectors {
		fmt.Printf("  collector: %s (params %s,%s, ttl %dd)\n", c.Domain, c.Param, c.MidParam, c.TTLDays)
	}
	fmt.Printf("  partners: %s\n", strings.Join(s.Partners, ", "))
}

// serve exposes the virtual network over a real listener, routing by Host
// header.
func serve(w *web.World, addr string) {
	hosts := w.Network().Hosts()
	fmt.Fprintf(os.Stderr, "serving %d hosts on %s — e.g. curl -H 'Host: %s' http://localhost%s/\n",
		len(hosts), addr, hosts[0], addr)
	handler := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// Dispatch through the virtual transport so fault injection and
		// identity semantics apply exactly as in a crawl.
		r2 := r.Clone(r.Context())
		r2.URL.Scheme = "http"
		r2.URL.Host = r.Host
		r2.RequestURI = ""
		resp, err := w.Network().RoundTrip(r2)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				rw.Header().Add(k, v)
			}
		}
		rw.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(rw, resp.Body); err != nil {
			log.Printf("copy: %v", err)
		}
	})
	log.Fatal(http.ListenAndServe(addr, handler))
}
