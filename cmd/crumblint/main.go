// Crumblint machine-checks the invariants crumbcruncher's determinism
// guarantee rests on: no wall-clock reads outside annotated sites, no
// unseeded randomness, no order-dependent emission from map iteration,
// no leaked telemetry spans, and no deprecated entry points.
//
// Run it standalone:
//
//	go run ./cmd/crumblint ./...
//
// or as a vet tool, which also covers test compilation units:
//
//	go build -o bin/crumblint ./cmd/crumblint
//	go vet -vettool=bin/crumblint ./...
//
// A finding can be waived, visibly, with a //crumb:allow directive; see
// internal/lint/directive and DESIGN.md §9.
package main

import (
	"crumbcruncher/internal/lint"
	"crumbcruncher/internal/lint/driver"
)

func main() {
	driver.Main(lint.All()...)
}
