// Command crumbserved runs CrumbCruncher as a resident multi-tenant
// service: a long-lived process accepting crawl and reanalysis jobs
// over an HTTP/JSON API, executing them on a worker pool with a shared
// world cache, and serving results, telemetry and persisted runs.
//
// Usage:
//
//	crumbserved [-addr :8080] [-workers N] [-queue N] [-store DIR]
//	            [-rate N] [-burst N] [-retry-after S] [-span-cap N]
//	            [-fsync POLICY] [-pprof localhost:6060] [-drain-grace D]
//
// Quickstart:
//
//	crumbserved -addr :8080 -store runs/ &
//	curl -X POST localhost:8080/jobs -d '{"small":true,"seed":7,"walks":20}'
//	curl localhost:8080/jobs/job-000001
//	curl localhost:8080/jobs/job-000001/report
//
// On SIGTERM/SIGINT the server drains: new submissions get 503 +
// Retry-After, queued jobs are canceled, in-flight jobs checkpoint
// (resumable when a -store is configured) and the process exits 0 once
// idle or after -drain-grace, whichever comes first.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbserved: ")

	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 2, "concurrent job executors")
		queueCap   = flag.Int("queue", 64, "job queue capacity (-1: unbounded)")
		storeDir   = flag.String("store", "", "persist completed runs and job checkpoints under this directory")
		rate       = flag.Float64("rate", 0, "token-bucket admission: jobs per second (0: unlimited)")
		burst      = flag.Int("burst", 0, "token-bucket admission: burst size (0: unlimited)")
		retryAfter = flag.Int("retry-after", 5, "Retry-After seconds on 503/429 responses")
		spanCap    = flag.Int("span-cap", 0, "per-job span tracer capacity (0: default)")
		fsyncMode  = flag.String("fsync", "interval", "fsync policy for checkpoints and the run index: never, interval, every-record")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "maximum time to wait for in-flight jobs to drain on shutdown")
	)
	flag.Parse()

	policy, ok := runio.ParseSyncPolicy(*fsyncMode)
	if !ok {
		log.Fatalf("bad -fsync %q: want never, interval or every-record", *fsyncMode)
	}
	runio.SetDefaultSyncPolicy(policy)

	srv, err := serve.New(serve.Options{
		Workers:           *workers,
		QueueCapacity:     *queueCap,
		AdmitBurst:        *burst,
		AdmitPerSecond:    *rate,
		StoreDir:          *storeDir,
		SpanCapacity:      *spanCap,
		RetryAfterSeconds: *retryAfter,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *pprofAddr != "" {
		bound, stopDebug, err := serve.StartDebug(*pprofAddr, nil)
		if err != nil {
			log.Fatalf("pprof server: %v", err)
		}
		defer stopDebug()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", bound)
	}

	// Bind synchronously: a bad -addr is a startup error, and by the
	// time the "listening" line prints, requests are being accepted.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "listening on http://%s (workers=%d queue=%d store=%q)\n",
		ln.Addr(), *workers, *queueCap, *storeDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "draining: rejecting new jobs, interrupting in-flight jobs...")
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(grace); err != nil {
		log.Printf("drain: %v", err)
	}
	// The API stays up through the drain so late submissions observe
	// 503 + Retry-After instead of connection refused; shut it down
	// only once the worker pool is idle.
	if err := httpSrv.Shutdown(grace); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "drained: exiting")
}
