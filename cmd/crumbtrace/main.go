// Command crumbtrace summarizes a telemetry trace exported by
// crumbcruncher -trace: per-layer span counts and wall-time histograms,
// the slowest spans, and the injected-fault timeline in virtual-clock
// order.
//
// Usage:
//
//	crumbtrace [-top N] [-json] trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"crumbcruncher/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crumbtrace: ")

	var (
		top     = flag.Int("top", 10, "number of slowest spans to show")
		asJSON  = flag.Bool("json", false, "emit the summary as JSON instead of text")
		maxRows = flag.Int("faults", 20, "number of fault-timeline rows to show (0: all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: crumbtrace [-top N] [-faults N] [-json] trace.jsonl")
		os.Exit(2)
	}

	spans, err := telemetry.ReadSpansFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	sum := telemetry.Summarize(spans, *top)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			log.Fatal(err)
		}
		return
	}
	render(os.Stdout, sum, *maxRows)
}

func render(w *os.File, sum telemetry.TraceSummary, maxFaults int) {
	fmt.Fprintf(w, "trace: %d spans", sum.Spans)
	if !sum.VStart.IsZero() {
		fmt.Fprintf(w, ", virtual %s → %s (%s simulated)",
			sum.VStart.Format(time.RFC3339), sum.VEnd.Format(time.RFC3339),
			sum.VEnd.Sub(sum.VStart).Round(time.Millisecond))
	}
	fmt.Fprintf(w, ", %s total wall time\n\n", time.Duration(sum.WallTime).Round(time.Microsecond))

	fmt.Fprintln(w, "per-layer spans")
	fmt.Fprintln(w, "---------------")
	for _, ls := range sum.Layers {
		mean := time.Duration(0)
		if ls.Spans > 0 {
			mean = time.Duration(int64(ls.WallTime) / int64(ls.Spans))
		}
		fmt.Fprintf(w, "%-10s %7d spans  %4d errors  %12s wall  %10s mean  %s\n",
			ls.Layer, ls.Spans, ls.Errors,
			ls.WallTime.Round(time.Microsecond), mean.Round(time.Microsecond),
			sparkline(ls.WallHist))
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "slowest spans (wall time)")
	fmt.Fprintln(w, "-------------------------")
	for _, s := range sum.Slowest {
		fmt.Fprintf(w, "%12s  %s/%s%s\n",
			time.Duration(s.Wall).Round(time.Microsecond), s.Layer, s.Name, attrString(s.Attrs))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "fault timeline (%d faults)\n", len(sum.Faults))
	fmt.Fprintln(w, "--------------------------")
	faults := sum.Faults
	if maxFaults > 0 && len(faults) > maxFaults {
		faults = faults[:maxFaults]
	}
	for _, f := range faults {
		fmt.Fprintf(w, "%s  %s/%s: %s\n",
			f.VirtualTime.Format("15:04:05.000"), f.Layer, f.Name, f.Err)
	}
	if n := len(sum.Faults) - len(faults); n > 0 {
		fmt.Fprintf(w, "... and %d more\n", n)
	}
}

// attrString renders span attributes as a stable " {k=v ...}" suffix.
func attrString(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return " {" + strings.Join(parts, " ") + "}"
}

// sparkline renders a histogram's log2 buckets as a unicode bar strip.
func sparkline(h telemetry.HistogramSnapshot) string {
	if len(h.Buckets) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	max := int64(1)
	for _, b := range h.Buckets {
		if b.Count > max {
			max = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range h.Buckets {
		idx := int(b.Count * int64(len(levels)-1) / max)
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
