package crumbcruncher_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crumbcruncher"
)

// This file is the only place the deprecated package-level wrappers may
// be called: it pins their behaviour to the Runner and RunStore APIs
// they delegate to. Everywhere else a call to Execute, ExecuteContext,
// Reanalyze, SaveRun, LoadRun, EncodeRun or DecodeRun is a crumblint
// noentry violation, which is why every call below carries a
// //crumb:allow noentry directive.

func metricsOf(t *testing.T, run *crumbcruncher.Run) string {
	t.Helper()
	var b strings.Builder
	if err := crumbcruncher.WriteMetricsJSON(&b, run); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDeprecatedWrappersMatchRunner(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 15

	want, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := metricsOf(t, want)

	//crumb:allow noentry deprecation coverage for the legacy wrapper
	got, err := crumbcruncher.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, got) != wantJSON {
		t.Error("Execute diverged from NewRunner(cfg).Run")
	}

	//crumb:allow noentry deprecation coverage for the legacy wrapper
	got, err = crumbcruncher.ExecuteContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, got) != wantJSON {
		t.Error("ExecuteContext diverged from NewRunner(cfg).Run")
	}

	rcfg := cfg
	rcfg.Parallelism = 4
	wantRerun, err := crumbcruncher.NewRunner(rcfg).Reanalyze(context.Background(), want)
	if err != nil {
		t.Fatal(err)
	}
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	gotRerun, err := crumbcruncher.Reanalyze(rcfg, want)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, gotRerun) != metricsOf(t, wantRerun) {
		t.Error("Reanalyze diverged from NewRunner(cfg).Reanalyze")
	}
}

// TestDeprecatedStorageWrappersMatchRunStore pins the legacy run
// storage API: SaveRun now writes through the RunStore line backend,
// LoadRun opens any store format, and EncodeRun/DecodeRun keep the
// single-document shape for downstream tools — all reproducing the
// original run's metrics exactly.
func TestDeprecatedStorageWrappersMatchRunStore(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 15
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := metricsOf(t, run)

	dir := t.TempDir()
	savePath := filepath.Join(dir, "crawl.json")
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	if err := crumbcruncher.SaveRun(savePath, run); err != nil {
		t.Fatal(err)
	}
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	loaded, err := crumbcruncher.LoadRun(savePath)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, loaded) != wantJSON {
		t.Error("SaveRun/LoadRun round trip diverged from the original run")
	}
	// SaveRun must produce the RunStore line format, not the legacy
	// document: the new API opens it directly.
	if _, err := crumbcruncher.OpenRunStore(savePath); err != nil {
		t.Errorf("SaveRun output does not open as a run store: %v", err)
	}

	var buf bytes.Buffer
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	if err := crumbcruncher.EncodeRun(&buf, run); err != nil {
		t.Fatal(err)
	}
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	decoded, err := crumbcruncher.DecodeRun(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, decoded) != wantJSON {
		t.Error("EncodeRun/DecodeRun round trip diverged from the original run")
	}
	// The legacy document also opens read-only through the RunStore API.
	legacyPath := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacyPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := crumbcruncher.OpenRunStore(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Walks() != run.Dataset.WalkCount() {
		t.Errorf("legacy store holds %d walks, want %d", st.Walks(), run.Dataset.WalkCount())
	}
}
