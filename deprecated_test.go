package crumbcruncher_test

import (
	"context"
	"strings"
	"testing"

	"crumbcruncher"
)

// This file is the only place the deprecated package-level wrappers may
// be called: it pins their behaviour to the Runner API they delegate
// to. Everywhere else a call to Execute, ExecuteContext or Reanalyze is
// a crumblint noentry violation, which is why every call below carries
// a //crumb:allow noentry directive.

func metricsOf(t *testing.T, run *crumbcruncher.Run) string {
	t.Helper()
	var b strings.Builder
	if err := crumbcruncher.WriteMetricsJSON(&b, run); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDeprecatedWrappersMatchRunner(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 15

	want, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := metricsOf(t, want)

	//crumb:allow noentry deprecation coverage for the legacy wrapper
	got, err := crumbcruncher.Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, got) != wantJSON {
		t.Error("Execute diverged from NewRunner(cfg).Run")
	}

	//crumb:allow noentry deprecation coverage for the legacy wrapper
	got, err = crumbcruncher.ExecuteContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, got) != wantJSON {
		t.Error("ExecuteContext diverged from NewRunner(cfg).Run")
	}

	rcfg := cfg
	rcfg.Parallelism = 4
	wantRerun, err := crumbcruncher.NewRunner(rcfg).Reanalyze(context.Background(), want)
	if err != nil {
		t.Fatal(err)
	}
	//crumb:allow noentry deprecation coverage for the legacy wrapper
	gotRerun, err := crumbcruncher.Reanalyze(rcfg, want)
	if err != nil {
		t.Fatal(err)
	}
	if metricsOf(t, gotRerun) != metricsOf(t, wantRerun) {
		t.Error("Reanalyze diverged from NewRunner(cfg).Reanalyze")
	}
}
