package crumbcruncher_test

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"

	"crumbcruncher"
)

// faultyConfig is a small world where a slice of domains refuses
// connections, another slice fails transiently, and a third answers
// early attempts with 502/503 — crawled with the default retry policy.
func faultyConfig(seed int64, parallel int) crumbcruncher.Config {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = seed
	cfg.Walks = 20
	cfg.Parallelism = parallel
	cfg.World.ConnectFailRate = 0.033
	cfg.World.TransientFailRate = 0.2
	cfg.World.HTTPDegradeRate = 0.15
	cfg.Retry = crumbcruncher.DefaultRetryPolicy()
	return cfg
}

func faultyMetricsJSON(t *testing.T, cfg crumbcruncher.Config) string {
	t.Helper()
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := crumbcruncher.WriteMetricsJSON(&b, run); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestResilientCrawlDeterminism is the resilience layer's acceptance
// check: with transient faults, degraded responses and retries all
// enabled, two runs of the same seed produce byte-identical metrics
// JSON — at Parallelism 1 and at Parallelism 8, and identical across
// the two parallelism levels.
func TestResilientCrawlDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		base := faultyMetricsJSON(t, faultyConfig(seed, 1))
		if again := faultyMetricsJSON(t, faultyConfig(seed, 1)); again != base {
			t.Errorf("seed %d: metrics differ between identical runs at Parallelism 1:\n%s\nvs\n%s", seed, base, again)
		}
		p8 := faultyMetricsJSON(t, faultyConfig(seed, 8))
		if p8 != base {
			t.Errorf("seed %d: metrics at Parallelism 8 differ from Parallelism 1:\n%s\nvs\n%s", seed, base, p8)
		}
		if again := faultyMetricsJSON(t, faultyConfig(seed, 8)); again != p8 {
			t.Errorf("seed %d: metrics differ between identical runs at Parallelism 8", seed)
		}
		if !strings.Contains(base, "retried_requests") {
			t.Errorf("seed %d: faulty crawl reported no retried requests:\n%s", seed, base)
		}
	}
}

// TestResilienceInReport checks the rendered report splits the failure
// rate into transient-recovered and permanently-unreachable when the
// crawl saw faults.
func TestResilienceInReport(t *testing.T) {
	run, err := crumbcruncher.NewRunner(faultyConfig(2, 4)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	crumbcruncher.WriteReport(&b, run)
	if !strings.Contains(b.String(), "Resilience:") {
		t.Fatalf("report missing the resilience line:\n%s", b.String())
	}
}

// TestFaultMatrixSmoke is the CI fault-matrix job: it runs only when
// CC_FAULT_SMOKE=1, reads the connect-failure rate from
// CC_CONNECT_FAIL_RATE (the workflow sweeps 0, the paper's 0.033, and
// 0.2), layers transient faults and degraded responses on top, and
// asserts the pipeline completes degraded-not-errored under -race.
func TestFaultMatrixSmoke(t *testing.T) {
	if os.Getenv("CC_FAULT_SMOKE") != "1" {
		t.Skip("set CC_FAULT_SMOKE=1 to run the fault-matrix smoke test")
	}
	rate := 0.0
	if v := os.Getenv("CC_CONNECT_FAIL_RATE"); v != "" {
		var err error
		if rate, err = strconv.ParseFloat(v, 64); err != nil {
			t.Fatalf("CC_CONNECT_FAIL_RATE=%q: %v", v, err)
		}
	}
	cfg := faultyConfig(1, 4)
	cfg.Walks = 30
	cfg.World.ConnectFailRate = rate
	cfg.Breaker = crumbcruncher.BreakerConfig{Threshold: 3}
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("pipeline errored instead of degrading (connect-fail %v): %v", rate, err)
	}
	if run.Dataset.StepCount() == 0 {
		t.Fatal("crawl produced no steps")
	}
	for _, w := range run.Dataset.Walks {
		if w.Skipped {
			t.Fatalf("walk %d skipped in an uncancelled crawl", w.Index)
		}
	}
	var b strings.Builder
	crumbcruncher.WriteReport(&b, run)
	if !strings.Contains(b.String(), "Table 2") {
		t.Fatal("report incomplete under faults")
	}
}
