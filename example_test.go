package crumbcruncher_test

import (
	"fmt"

	"crumbcruncher"
)

// Stripping suspected UID parameters is the paper's proposed mitigation
// (§7.2): known parameter names and UID-shaped values are removed, benign
// parameters are kept.
func ExampleStripSuspectedUIDs() {
	cleaned := crumbcruncher.StripSuspectedUIDs(
		"http://shop.example.com/land?gclid=4f2a9c1b7d8e0011aabb&lang=en-US&page=2",
		map[string]bool{"gclid": true},
	)
	fmt.Println(cleaned)
	// Output: http://shop.example.com/land?lang=en-US&page=2
}

// Debouncing (Brave, §7.1): when a redirector URL encodes its true
// destination in a query parameter, navigate straight there.
func ExampleDebouncer_Debounce() {
	d := crumbcruncher.NewDebouncer(nil, []string{"zclid"})
	res := d.Debounce("http://smuggler.example.net/c?d=http%3A%2F%2Fshop.example.com%2F%3Fzclid%3Ddeadbeef01")
	fmt.Println(res.Debounced, res.URL)
	// Output: true http://shop.example.com/
}
