package crumbcruncher_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crumbcruncher"
)

func TestExecuteAndReport(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 25
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Cases) == 0 {
		t.Fatal("no UID cases found")
	}
	var b strings.Builder
	crumbcruncher.WriteReport(&b, run)
	if !strings.Contains(b.String(), "Table 2") {
		t.Fatal("report incomplete")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 15
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "crawl.json")
	if err := crumbcruncher.SaveRunStore(path, run); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("saved file: %v %v", fi, err)
	}
	loaded, err := crumbcruncher.LoadRunStore(path)
	if err != nil {
		t.Fatal(err)
	}
	// Re-analysis of the same dataset must reproduce the results exactly.
	if len(loaded.Cases) != len(run.Cases) {
		t.Fatalf("cases after reload: %d != %d", len(loaded.Cases), len(run.Cases))
	}
	if loaded.Analysis.SmugglingRate() != run.Analysis.SmugglingRate() {
		t.Fatal("smuggling rate changed across save/load")
	}
	s1, s2 := run.Analysis.Summarize(), loaded.Analysis.Summarize()
	if s1 != s2 {
		t.Fatalf("summaries differ: %+v vs %+v", s1, s2)
	}
}

func TestLoadRunMissingFile(t *testing.T) {
	if _, err := crumbcruncher.LoadRunStore(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestPublicCountermeasures(t *testing.T) {
	d := crumbcruncher.NewDebouncer(nil, []string{"gclid"})
	res := d.Debounce("http://r.net/c?d=http%3A%2F%2Fshop.com%2F%3Fgclid%3Dabc12345678")
	if !res.Debounced || strings.Contains(res.URL, "gclid") {
		t.Fatalf("debounce: %+v", res)
	}
	got := crumbcruncher.StripSuspectedUIDs("http://shop.com/?x=4f2a9c1b7d8e0011aabb&lang=en-US", nil)
	if strings.Contains(got, "4f2a") || !strings.Contains(got, "lang") {
		t.Fatalf("strip: %q", got)
	}
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 10
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(run.Dataset)
	if err != nil {
		t.Fatal(err)
	}
	var back crumbcruncher.Dataset
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.StepCount() != run.Dataset.StepCount() {
		t.Fatalf("steps: %d != %d", back.StepCount(), run.Dataset.StepCount())
	}
	if len(back.Walks) != len(run.Dataset.Walks) {
		t.Fatal("walks lost")
	}
	// Spot-check a deep field survives.
	for i, w := range run.Dataset.Walks {
		for j, s := range w.Steps {
			for name, rec := range s.Records {
				got := back.Walks[i].Steps[j].Records[name]
				if got == nil || got.StartURL != rec.StartURL || len(got.NavChain) != len(rec.NavChain) {
					t.Fatalf("record %d/%d/%s mismatched after round trip", i, j, name)
				}
			}
		}
	}
}

func TestComputeMetrics(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 20
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := crumbcruncher.ComputeMetrics(run)
	if m.Steps == 0 || m.UniqueURLPaths == 0 {
		t.Fatalf("metrics empty: %+v", m)
	}
	if m.ConfirmedUIDCases != len(run.Cases) {
		t.Fatal("case count mismatch")
	}
	var b strings.Builder
	if err := crumbcruncher.WriteMetricsJSON(&b, run); err != nil {
		t.Fatal(err)
	}
	var back crumbcruncher.Metrics
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.SmugglingRate != m.SmugglingRate {
		t.Fatal("JSON round trip changed metrics")
	}
}

// TestParallelAnalysisDeterminism is the acceptance check for the
// parallel post-crawl pipeline: re-analysing the same crawl at any
// worker-pool size must produce bit-identical metrics. Runs under -race
// via `make check`, which also exercises the merge paths for data races.
func TestParallelAnalysisDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := crumbcruncher.SmallConfig()
		cfg.World.Seed = seed
		cfg.Walks = 40
		cfg.Parallelism = 1
		run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var base strings.Builder
		if err := crumbcruncher.WriteMetricsJSON(&base, run); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(base.String(), "confirmed_uid_cases") {
			t.Fatalf("seed %d: metrics incomplete", seed)
		}
		for _, par := range []int{4, 16} {
			pcfg := cfg
			pcfg.Parallelism = par
			prun, err := crumbcruncher.NewRunner(pcfg).Reanalyze(context.Background(), run)
			if err != nil {
				t.Fatal(err)
			}
			var got strings.Builder
			if err := crumbcruncher.WriteMetricsJSON(&got, prun); err != nil {
				t.Fatal(err)
			}
			if got.String() != base.String() {
				t.Errorf("seed %d: metrics at Parallelism=%d differ from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seed, par, base.String(), got.String())
			}
		}
	}
}
