module crumbcruncher

go 1.22
