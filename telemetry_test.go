package crumbcruncher_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"crumbcruncher"
	"crumbcruncher/internal/telemetry"
)

// metricsJSON renders a run's metrics, the byte-level artifact the
// determinism guarantee is stated over.
func metricsJSON(t *testing.T, r *crumbcruncher.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := crumbcruncher.WriteMetricsJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryDoesNotPerturbResults is the subsystem's core contract:
// attaching telemetry never changes what a run measures. A full crawl at
// Parallelism 1 (the only run-repeatable crawl setting — concurrent
// walks share the virtual clock) must produce byte-identical metrics
// JSON with telemetry on and off, and re-analysing the same dataset must
// stay byte-identical at every worker-pool size in both modes.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.Parallelism = 1

	base, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := metricsJSON(t, base)

	tcfg := cfg
	tcfg.Telemetry = crumbcruncher.NewTelemetry()
	traced, err := crumbcruncher.NewRunner(tcfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricsJSON(t, traced); !bytes.Equal(got, want) {
		t.Errorf("telemetry-enabled crawl changed the metrics JSON:\nwithout: %s\nwith:    %s", want, got)
	}

	// Post-crawl pipeline: same dataset, every parallelism, both modes.
	for _, par := range []int{1, 4, 16} {
		for _, withTel := range []bool{false, true} {
			name := fmt.Sprintf("reanalyze-par%d-tel%v", par, withTel)
			rcfg := cfg
			rcfg.Parallelism = par
			if withTel {
				rcfg.Telemetry = crumbcruncher.NewTelemetry()
			}
			rerun, err := crumbcruncher.NewRunner(rcfg).Reanalyze(context.Background(), base)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := metricsJSON(t, rerun); !bytes.Equal(got, want) {
				t.Errorf("%s: metrics JSON diverged from the baseline", name)
			}
		}
	}
}

// TestTraceCoversEveryLayer executes the small configuration with
// telemetry attached and asserts the trace carries spans from every
// pipeline layer — the acceptance shape cmd/crumbtrace summarizes.
func TestTraceCoversEveryLayer(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	tel := crumbcruncher.NewTelemetry()
	cfg.Telemetry = tel
	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	spans := tel.Tracer().Spans()
	sum := telemetry.Summarize(spans, 5)
	for _, layer := range []string{"netsim", "browser", "crawler", "analysis", "core"} {
		if n := sum.LayerSpanCount(layer); n == 0 {
			t.Errorf("no spans recorded for layer %q", layer)
		}
	}

	// The JSONL round trip crumbtrace depends on.
	var buf bytes.Buffer
	if err := tel.Tracer().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(spans) {
		t.Errorf("JSONL round trip: wrote %d spans, read %d", len(spans), len(decoded))
	}

	// Counters folded from the old Network atomics must both be live and
	// agree with the network's accessors.
	net := run.World.Network()
	if reqs := tel.Counter("netsim.requests").Value(); reqs == 0 || reqs != net.RequestCount() {
		t.Errorf("netsim.requests = %d, RequestCount() = %d", reqs, net.RequestCount())
	}
	if fails := tel.Counter("netsim.failures").Value(); fails != net.FailureCount() {
		t.Errorf("netsim.failures = %d, FailureCount() = %d", fails, net.FailureCount())
	}

	// Provenance embedded on save must carry the registry snapshot.
	prov := telemetry.NewProvenance(cfg.World.Seed, cfg, tel)
	if prov.Metrics == nil || prov.Metrics.Counters["crawler.walks_done"] != int64(len(run.Dataset.Walks)) {
		t.Errorf("provenance metrics missing or walks_done mismatch: %+v", prov.Metrics)
	}
	if prov.SpansRecorded == 0 {
		t.Error("provenance records zero spans")
	}
}
