// Countermeasures: evaluate the §7 defences against a measured crawl —
// how much smuggling Brave-style debouncing and query stripping would
// have neutralized — and rerun the paper's §6 breakage experiment on ten
// token-gated login pages.
package main

import (
	"context"
	"fmt"
	"log"
	"net/url"

	"crumbcruncher"
	"crumbcruncher/internal/browser"
	"crumbcruncher/internal/countermeasures"
	"crumbcruncher/internal/ident"
	"crumbcruncher/internal/storage"
)

func main() {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 80

	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	smugglingURLs := run.Analysis.SmugglingURLs()
	knownParams := map[string]bool{}
	for _, p := range run.Analysis.SmugglerParamNames() {
		knownParams[p] = true
	}

	// 1. Debouncing: how many smuggling URLs encode their destination,
	//    letting the browser skip the redirector entirely?
	deb := crumbcruncher.NewDebouncer(run.Analysis.DedicatedSmugglers(), run.Analysis.SmugglerParamNames())
	debounced, interstitial := 0, 0
	for _, raw := range smugglingURLs {
		res := deb.Debounce(raw)
		if res.Debounced {
			debounced++
		} else if res.Interstitial {
			interstitial++
		}
	}
	fmt.Printf("Debouncing (Brave): of %d smuggling URLs, %d debounce straight to their destination, %d trigger an interstitial.\n",
		len(smugglingURLs), debounced, interstitial)

	// 2. Query stripping: how many smuggling URLs lose their UID
	//    parameters under the paper's proposed mitigation?
	stripped := 0
	for _, raw := range smugglingURLs {
		clean := crumbcruncher.StripSuspectedUIDs(raw, knownParams)
		if clean != raw {
			stripped++
		}
	}
	fmt.Printf("Query stripping:    %d of %d smuggling URLs had UID parameters removed.\n\n",
		stripped, len(smugglingURLs))

	// 3. The §6 breakage experiment: strip tokens from ten login pages.
	var pages []string
	for _, s := range run.World.Sites() {
		if s.HasAccount && len(pages) < 10 {
			atok := ident.UID(cfg.World.Seed, s.Domain, "sso", "breakage-user")
			pages = append(pages, "http://"+s.Domain+"/account?atok="+atok)
		}
	}
	if len(pages) == 0 {
		fmt.Println("No login pages in this world; skipping the breakage experiment.")
		return
	}
	n := 0
	summary := countermeasures.EvaluateBreakageSample(func() *browser.Browser {
		n++
		return browser.New(browser.Config{
			Seed:      cfg.World.Seed,
			ProfileID: "breakage-user",
			ClientID:  fmt.Sprintf("breakage-%d", n),
			Machine:   "m1",
			Policy:    storage.Partitioned,
			Network:   run.World.Network(),
		})
	}, pages, func(name, _ string) bool { return name == "atok" })

	fmt.Printf("Breakage experiment (§6) over %d login pages (paper: 7 unchanged, 1 minor, 2 broken):\n", len(pages))
	for _, class := range []countermeasures.BreakageClass{
		countermeasures.BreakNone, countermeasures.BreakMinor,
		countermeasures.BreakMissingField, countermeasures.BreakRedirect,
	} {
		fmt.Printf("  %-22s %d\n", class, summary.Counts[class])
	}
	for _, r := range summary.Results {
		if r.Class != countermeasures.BreakNone {
			if u, err := url.Parse(r.URL); err == nil {
				fmt.Printf("  e.g. %s → %s\n", u.Host+u.Path, r.Class)
			}
		}
	}
}
