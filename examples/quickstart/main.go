// Quickstart: run a small end-to-end measurement and print the headline
// results — the fastest way to see CrumbCruncher find UID smuggling.
package main

import (
	"context"
	"fmt"
	"log"

	"crumbcruncher"
	"crumbcruncher/internal/uid"
)

func main() {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 60

	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Crawled %d walks (%d synchronized steps) over %d synthetic sites.\n",
		len(run.Dataset.Walks), run.Dataset.StepCount(), cfg.World.NumSites)
	fmt.Printf("Extracted %d cross-context token candidates.\n", len(run.Candidates))
	fmt.Printf("Confirmed %d smuggled UIDs — %.1f%% of the %d unique navigation paths.\n\n",
		len(run.Cases),
		100*run.Analysis.SmugglingRate(),
		run.Analysis.Summarize().UniqueURLPaths)

	fmt.Println("How the UIDs were observed across crawlers (Table 1):")
	buckets := uid.BucketCounts(run.Cases)
	for _, b := range uid.Buckets {
		fmt.Printf("  %-46s %d\n", b, buckets[b])
	}

	fmt.Println("\nBusiest smuggling redirectors (Table 3):")
	for _, row := range run.Analysis.TopRedirectors(5) {
		kind := "dedicated smuggler"
		if row.MultiPurpose {
			kind = "multi-purpose"
		}
		fmt.Printf("  %-34s %3d domain paths (%.1f%%)  [%s]\n",
			row.Host, row.Count, row.PctDomainPaths, kind)
	}

	fmt.Println("\nFor the full report: go run ./cmd/crumbcruncher -small")
}
