// Affiliate marketing: the scenario the paper's introduction points to as
// a likely driver of UID smuggling (§5: conversion attribution breaks
// under third-party cookie blocking, and link decoration restores it).
//
// This example follows one confirmed smuggling case end to end — the
// originator page, the decorated click, every redirector hop, and the
// first-party cookies the UID ends up in on both sides — making the
// Figure 2 mechanism concrete.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"crumbcruncher"
	"crumbcruncher/internal/crawler"
)

func main() {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 80

	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if len(run.Cases) == 0 {
		log.Fatal("no smuggling found — increase walks")
	}

	// Pick a case with a redirector chain observed on Safari-1 (so both
	// sides' storage snapshots are available).
	var chosen *crumbcruncher.Case
	for _, c := range run.Cases {
		cand := c.Candidates[0]
		if cand.Crawler == crawler.Safari1 && len(cand.Path.Nodes) > 2 {
			chosen = c
			break
		}
	}
	if chosen == nil {
		chosen = run.Cases[0]
	}
	cand := chosen.Candidates[0]
	uidValue := cand.Value

	fmt.Printf("Smuggled UID: %s=%s\n", chosen.Group.Name, uidValue)
	fmt.Printf("Observed by:  %s (walk %d, step %d, bucket %q)\n\n",
		cand.Crawler, chosen.Group.Walk, chosen.Group.Step, chosen.Bucket)

	fmt.Println("Navigation path (Figure 2):")
	for i, node := range cand.Path.Nodes {
		role := "redirector"
		switch i {
		case 0:
			role = "originator"
		case len(cand.Path.Nodes) - 1:
			role = "destination"
		}
		marker := "   "
		if i >= cand.FirstIdx && i <= cand.LastIdx {
			marker = "UID"
		}
		fmt.Printf("  %d. [%-11s] %s %s\n", i+1, role, marker, node.URL)
	}

	// Show where the UID ended up as first-party state.
	step := run.Dataset.Walks[chosen.Group.Walk].Steps[chosen.Group.Step-1]
	rec := step.Records[cand.Crawler]
	fmt.Println("\nFirst-party cookies holding the UID after the click:")
	found := 0
	for _, c := range rec.After.Cookies {
		if strings.Contains(c.Value, uidValue) {
			fmt.Printf("  %s=%s  (domain %s, lifetime %s)\n", c.Name, c.Value, c.Domain,
				lifetime(c))
			found++
		}
	}
	if found == 0 {
		fmt.Println("  (the destination only received it in the URL — still a privacy risk, §3.6)")
	}
	fmt.Println("\nThe affiliate network can now attribute this user's purchase to the")
	fmt.Println("publisher that showed the link — across the partitioned-storage boundary.")
}

func lifetime(c crawler.CookieRecord) string {
	if c.Expires.IsZero() {
		return "session"
	}
	return c.Expires.Sub(c.Created).String()
}
