// Blocklist generation: the paper's §7.2 contribution. CrumbCruncher runs
// as "an almost entirely automated pipeline to continuously update
// blocklists of navigational trackers": this example produces the two
// artifacts the authors published — the UID-carrying query-parameter
// names and the smuggler redirector hosts — in formats the surveyed
// defences consume (a debounce.json-style parameter list and
// EasyList-style host rules), and measures how much they improve on the
// incumbent lists.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"crumbcruncher"
	"crumbcruncher/internal/filterlist"
)

func main() {
	cfg := crumbcruncher.SmallConfig()
	cfg.Walks = 80

	run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	params := run.Analysis.SmugglerParamNames()
	dedicated := run.Analysis.DedicatedSmugglers()

	// Brave debounce.json-style parameter blocklist.
	blob, err := json.MarshalIndent(map[string]interface{}{
		"description": "UID-smuggling query parameters found by CrumbCruncher",
		"params":      params,
	}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("debounce-params.json:")
	os.Stdout.Write(blob)
	fmt.Println()

	// EasyList-style rules for the smuggler hosts.
	fmt.Println("\nsmugglers.txt (EasyList syntax):")
	fmt.Println("! Dedicated UID smugglers found by CrumbCruncher")
	var rules []string
	for _, host := range dedicated {
		rule := "||" + host + "^"
		rules = append(rules, rule)
		fmt.Println(rule)
	}

	// How much does this improve on the incumbent lists? (§5.1: 41% of
	// dedicated smugglers were missing from Disconnect; §7.1: EasyList
	// blocked only 6% of smuggling URLs.)
	smugglingURLs := run.Analysis.SmugglingURLs()
	incumbent := run.EasyList()
	ours := filterlist.Parse(rules)
	fmt.Printf("\nCoverage of the %d observed smuggling URLs:\n", len(smugglingURLs))
	fmt.Printf("  incumbent EasyList-style rules: %.1f%%\n", 100*incumbent.BlockedFraction(smugglingURLs))
	fmt.Printf("  CrumbCruncher-generated rules:  %.1f%%\n", 100*ours.BlockedFraction(smugglingURLs))
	fmt.Printf("\nDedicated smugglers missing from the Disconnect-style list: %.0f%%\n",
		100*run.DisconnectDomains().MissingFraction(dedicated))
}
