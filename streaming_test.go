package crumbcruncher_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"crumbcruncher"
)

func metricsBytes(t *testing.T, run *crumbcruncher.Run) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := crumbcruncher.WriteMetricsJSON(&b, run); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestStreamingMatchesBatch is the tentpole's determinism contract: the
// streaming engine must produce byte-identical metrics JSON to the batch
// path for the same seed, at every parallelism.
func TestStreamingMatchesBatch(t *testing.T) {
	base := crumbcruncher.SmallConfig()
	base.World.Seed = 2
	base.Walks = 40

	var ref []byte
	for _, par := range []int{1, 4, 16} {
		cfg := base
		cfg.Parallelism = par

		run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: streaming: %v", par, err)
		}
		stream := metricsBytes(t, run)

		bcfg := cfg
		bcfg.BatchAnalysis = true
		brun, err := crumbcruncher.NewRunner(bcfg).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: batch: %v", par, err)
		}
		batch := metricsBytes(t, brun)

		if !bytes.Equal(stream, batch) {
			t.Errorf("parallelism %d: streaming metrics differ from batch", par)
		}
		if ref == nil {
			ref = stream
		} else if !bytes.Equal(stream, ref) {
			t.Errorf("parallelism %d: streaming metrics differ from parallelism 1", par)
		}
	}
}

// TestStreamingCancellation cancels a streaming run mid-crawl and checks
// that the engine drains instead of leaking: the analysis workers and
// queue gauges must both return to zero, and every walk handed to the
// queue must have been analyzed.
func TestStreamingCancellation(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = 2
	cfg.Walks = 30
	cfg.Parallelism = 4

	tel := crumbcruncher.NewTelemetry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	r := crumbcruncher.NewRunner(cfg,
		crumbcruncher.WithTelemetry(tel),
		crumbcruncher.WithProgress(func(p crumbcruncher.Progress) {
			if p.WalksDone >= 3 {
				once.Do(cancel)
			}
		}),
	)

	run, err := r.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", err)
	}
	if run != nil {
		t.Fatal("cancelled run returned a non-nil result")
	}

	if v := tel.Gauge("core.stream_workers").Value(); v != 0 {
		t.Errorf("leaked analysis workers: gauge core.stream_workers = %d", v)
	}
	if v := tel.Gauge("core.stream_queue_depth").Value(); v != 0 {
		t.Errorf("walks stuck in queue: gauge core.stream_queue_depth = %d", v)
	}
	analyzed := tel.Counter("core.stream_walks_analyzed").Value()
	sunk := tel.Counter("crawler.walks_done").Value() + tel.Counter("crawler.walks_skipped").Value()
	if analyzed != sunk {
		t.Errorf("analyzed %d walks but the crawl produced %d", analyzed, sunk)
	}
}

// TestStreamingResumeUsesSidecar interrupts a checkpointed streaming run,
// resumes it, and checks that (a) the resumed run restores per-walk
// analysis state from the checkpoint's sidecar instead of recomputing it
// and (b) the final metrics are byte-identical to an uninterrupted run.
func TestStreamingResumeUsesSidecar(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	cfg.World.Seed = 2
	cfg.Walks = 20
	cfg.Parallelism = 1

	ref, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := metricsBytes(t, ref)

	ckptPath := filepath.Join(t.TempDir(), "ckpt.jsonl")

	ckpt, err := crumbcruncher.OpenCheckpoint(ckptPath, cfg.World.Seed)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err = crumbcruncher.NewRunner(cfg,
		crumbcruncher.WithCheckpoint(ckpt),
		crumbcruncher.WithProgress(func(p crumbcruncher.Progress) {
			if p.WalksAnalyzed >= 5 {
				once.Do(cancel)
			}
		}),
	).Run(ctx)
	if err == nil {
		t.Fatal("interrupted run returned no error")
	}
	ckpt.Close()

	ckpt, err = crumbcruncher.OpenCheckpoint(ckptPath, cfg.World.Seed)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	if ckpt.CompletedCount() == 0 {
		t.Fatal("checkpoint recorded no walks before the interrupt")
	}
	tel := crumbcruncher.NewTelemetry()
	run, err := crumbcruncher.NewRunner(cfg,
		crumbcruncher.WithCheckpoint(ckpt),
		crumbcruncher.WithTelemetry(tel),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if v := tel.Counter("core.stream_walks_restored").Value(); v == 0 {
		t.Error("resume recomputed every walk: counter core.stream_walks_restored = 0")
	}
	if got := metricsBytes(t, run); !bytes.Equal(got, want) {
		t.Error("resumed run's metrics differ from an uninterrupted run")
	}
}

// TestRunnerOptions checks that functional options land in the runner's
// effective config and that the variadic constructor leaves the caller's
// Config untouched.
func TestRunnerOptions(t *testing.T) {
	cfg := crumbcruncher.SmallConfig()
	tel := crumbcruncher.NewTelemetry()
	rp := crumbcruncher.DefaultRetryPolicy()
	rp.MaxAttempts = 7

	r := crumbcruncher.NewRunner(cfg,
		crumbcruncher.WithTelemetry(tel),
		crumbcruncher.WithRetryPolicy(rp),
	)
	got := r.Config()
	if got.Telemetry != tel {
		t.Error("WithTelemetry did not reach the runner config")
	}
	if got.Retry.MaxAttempts != 7 {
		t.Error("WithRetryPolicy did not reach the runner config")
	}
	if cfg.Telemetry != nil || cfg.Retry.MaxAttempts != 0 {
		t.Error("NewRunner mutated the caller's Config")
	}
}

// TestWorkStealingCrawlDeterminism pins the crawl's work-stealing
// dispatch (a fixed worker pool claiming walk indices from a shared
// counter): batch-mode runs — no streaming machinery between the crawl
// and the metrics — must produce byte-identical metrics JSON at
// parallelism 1, 4 and 16. The paper-faithful loopback HTTP controller
// transport is a deployment shape, not a semantic choice, so flipping
// it on must not change the bytes either.
func TestWorkStealingCrawlDeterminism(t *testing.T) {
	base := crumbcruncher.SmallConfig()
	base.World.Seed = 5
	base.Walks = 36
	base.BatchAnalysis = true

	var ref []byte
	for _, par := range []int{1, 4, 16} {
		cfg := base
		cfg.Parallelism = par
		run, err := crumbcruncher.NewRunner(cfg).Run(context.Background())
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		got := metricsBytes(t, run)
		if ref == nil {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Errorf("parallelism %d: metrics differ from parallelism 1", par)
		}
	}

	httpCfg := base
	httpCfg.Parallelism = 4
	httpCfg.ControllerHTTP = true
	run, err := crumbcruncher.NewRunner(httpCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("http controller transport: %v", err)
	}
	if !bytes.Equal(metricsBytes(t, run), ref) {
		t.Error("HTTP controller transport changed the metrics bytes")
	}
}
