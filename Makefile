# Developer entry points. `make check` is the gate every change must
# pass: it builds everything, vets, and runs the full test suite with the
# race detector on — which exercises the parallel analysis pipeline's
# determinism tests (Parallelism 1/4/16) under -race.

GO ?= go

.PHONY: check build vet test race bench bench-all

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The tracked benchmark set (full crawl, parallel re-analysis,
# streaming-vs-batch engine), archived as BENCH_pr4.json for cross-run
# comparison.
bench:
	scripts/bench.sh

# Paper-scale benchmarks: every table/figure plus the parallel-analysis
# speedup benchmark (BenchmarkAnalyzeParallel).
bench-all:
	$(GO) test -bench=. -benchmem ./...
