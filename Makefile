# Developer entry points. `make check` is the gate every change must
# pass: it builds everything, vets, runs crumblint (the project's own
# determinism/telemetry/resource-discipline analyzers, via the same
# cached standalone driver CI uses),
# runs the full test suite with the race detector on — which exercises
# the parallel analysis pipeline's determinism tests (Parallelism
# 1/4/16) under -race — and finishes with the chaos smoke (kill,
# corrupt, recover, diff against a clean run; DESIGN.md §12).

GO ?= go

.PHONY: check build vet lint lint-vet lint-sarif test race bench bench-all chaos scale

check: build vet lint race chaos

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# crumblint: wallclock, seededrand, maporder, spanend, noentry,
# fsyncpolicy, plus the interprocedural resource-discipline suite
# (mustclose, poolreset, ctxflow, sharedwrite). The standalone driver
# runs analyzers in parallel per package with content-hash result
# caching under bin/.lintcache and suppresses findings recorded in the
# checked-in baseline; anything new fails the build.
lint: bin/crumblint
	./bin/crumblint -cache bin/.lintcache -baseline .crumblint-baseline.json ./...

# The same suite through `go vet -vettool` (the unitchecker protocol).
# Kept as a separate target so the two drivers can be diffed; the
# TestStandaloneAgreesWithVet test asserts they agree.
lint-vet: bin/crumblint
	$(GO) vet -vettool=$(CURDIR)/bin/crumblint ./...

# SARIF export for code-scanning upload (CI attaches this as an
# artifact). The baseline is not applied: the report carries every
# finding, baselined or not.
lint-sarif: bin/crumblint
	./bin/crumblint -cache bin/.lintcache -sarif ./... > crumblint.sarif || true

bin/crumblint: FORCE
	$(GO) build -o bin/crumblint ./cmd/crumblint

.PHONY: FORCE
FORCE:

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-safety smoke: SIGKILL + bit-flip chaos at three process-level
# points, recovered metrics diffed byte-for-byte against clean runs.
chaos:
	scripts/chaossmoke.sh

# Scale smoke: 100k-domain lazy world crawled into the segment store
# under an RSS budget (warn-only), eager-vs-lazy and store-vs-crawl
# metrics diffed byte-for-byte.
scale:
	scripts/scalesmoke.sh

# The tracked benchmark set (full crawl, parallel re-analysis,
# streaming-vs-batch engine), archived as BENCH_pr6.json for cross-run
# comparison.
bench:
	scripts/bench.sh

# Paper-scale benchmarks: every table/figure plus the parallel-analysis
# speedup benchmark (BenchmarkAnalyzeParallel).
bench-all:
	$(GO) test -bench=. -benchmem ./...
