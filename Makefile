# Developer entry points. `make check` is the gate every change must
# pass: it builds everything, vets, and runs the full test suite with the
# race detector on — which exercises the parallel analysis pipeline's
# determinism tests (Parallelism 1/4/16) under -race.

GO ?= go

.PHONY: check build vet test race bench

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-scale benchmarks: every table/figure plus the parallel-analysis
# speedup benchmark (BenchmarkAnalyzeParallel).
bench:
	$(GO) test -bench=. -benchmem ./...
