// Package crumbcruncher is a from-scratch Go reproduction of
// "Measuring UID Smuggling in the Wild" (Randall et al., IMC 2022): the
// CrumbCruncher measurement system — four synchronized crawlers, a central
// HTTP controller, and a token-analysis pipeline — together with the
// synthetic-web substrate it runs on (virtual network, simulated browser
// with partitioned storage, generated tracker ecosystem).
//
// The Runner is the entry point; a one-call run of the entire study:
//
//	run, err := crumbcruncher.NewRunner(crumbcruncher.DefaultConfig()).Run(context.Background())
//	if err != nil { ... }
//	crumbcruncher.WriteReport(os.Stdout, run)
//
// Options wire in the cross-cutting concerns — WithTelemetry,
// WithRetryPolicy, WithCheckpoint, WithProgress — without touching the
// Config literal. By default execution streams: finished walks flow
// through token extraction and UID classification while the crawl is
// still running (see DESIGN.md §8).
//
// Results carry every table and figure from the paper's evaluation:
// run.Analysis exposes Table 2's summary, Table 3's redirector ranking,
// Figures 4–8, the headline smuggling rate, bounce tracking, the
// fingerprinting experiment and blocklist coverage; run.Cases are the
// confirmed UID smuggling instances with their Table 1 buckets.
package crumbcruncher

import (
	"context"
	"fmt"
	"io"
	"os"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/countermeasures"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/report"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

// Config configures a full pipeline run. See DefaultConfig and
// SmallConfig for starting points.
type Config = core.Config

// WorldConfig configures the synthetic web (Config.World).
type WorldConfig = web.Config

// Run is a completed pipeline run: the world, the crawl dataset, the
// candidate tokens, the confirmed UID cases and the analysis over them.
type Run = core.Run

// Case is one confirmed UID smuggling instance.
type Case = uid.Case

// IdentifyOptions configures the UID identification stage; the zero value
// is the paper's full method. Its baseline fields (two-crawler subsets,
// lifetime thresholds, Ratcliff/Obershelp slack) reproduce the prior-work
// strategies CrumbCruncher improves on.
type IdentifyOptions = uid.Options

// Analysis exposes every table and figure of the paper's evaluation.
type Analysis = analysis.Analysis

// Dataset is a complete crawl recording.
type Dataset = crawler.Dataset

// DefaultConfig returns the calibrated paper-scale configuration
// (EXPERIMENTS.md records how its measurements compare to the paper's).
func DefaultConfig() Config { return core.DefaultConfig() }

// SmallConfig returns a fast configuration for demos and tests.
func SmallConfig() Config { return core.SmallConfig() }

// Progress is a snapshot of a run's advancement, delivered to the
// WithProgress callback as walks complete and get analysed.
type Progress = core.Progress

// Option customizes a Runner at construction without the caller
// mutating a Config literal.
type Option func(*Config)

// WithTelemetry attaches an observability handle to the run.
func WithTelemetry(t *Telemetry) Option {
	return func(c *Config) { c.Telemetry = t }
}

// WithRetryPolicy sets the crawl's navigation retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Config) { c.Retry = p }
}

// WithCheckpoint attaches a checkpoint so an interrupted run resumes
// without redoing finished walks (or, under the default streaming
// engine, re-analysing them).
func WithCheckpoint(cp *Checkpoint) Option {
	return func(c *Config) { c.Checkpoint = cp }
}

// WithProgress registers a callback invoked with a Progress snapshot as
// walks complete and get analysed. Called from pipeline goroutines
// (serialized); keep it fast.
func WithProgress(fn func(Progress)) Option {
	return func(c *Config) { c.OnProgress = fn }
}

// Runner is the consolidated entry point: a configured pipeline that
// can execute the full study (Run) or re-run the post-crawl analysis
// over an existing dataset (Reanalyze).
type Runner struct {
	cfg Config
}

// NewRunner builds a Runner from a base configuration and options.
// The Config is copied; later mutations of the caller's value do not
// affect the Runner.
func NewRunner(cfg Config, opts ...Option) *Runner {
	for _, o := range opts {
		o(&cfg)
	}
	return &Runner{cfg: cfg}
}

// Config returns the Runner's effective configuration (options applied).
func (r *Runner) Config() Config { return r.cfg }

// Run builds the synthetic web, runs the four-crawler crawl and the
// token pipeline, and returns the analysed run. When ctx is cancelled
// the crawl drains gracefully — in-flight walks finish, unstarted walks
// are recorded as skipped — and ctx's error is returned. Pair with
// WithCheckpoint to resume later.
//
// By default the analysis streams alongside the crawl; set
// Config.BatchAnalysis to run the two phases sequentially instead.
// Both modes produce bit-identical results.
func (r *Runner) Run(ctx context.Context) (*Run, error) {
	return core.ExecuteContext(ctx, r.cfg)
}

// Reanalyze re-runs the post-crawl pipeline over run's recorded dataset
// under the Runner's configuration. The crawl is not repeated.
func (r *Runner) Reanalyze(ctx context.Context, run *Run) (*Run, error) {
	return core.AnalyzeContext(ctx, r.cfg, run.World, run.Dataset)
}

// Execute builds the synthetic web, runs the four-crawler crawl and the
// token pipeline, and returns the analysed run.
//
// Deprecated: use NewRunner(cfg).Run(context.Background()). Execute
// remains as a thin wrapper and will keep working.
func Execute(cfg Config) (*Run, error) { return NewRunner(cfg).Run(context.Background()) }

// ExecuteContext is Execute with cancellation: when ctx is cancelled the
// crawl drains gracefully — in-flight walks finish, unstarted walks are
// recorded as skipped — and ctx's error is returned. Pair with
// Config.Checkpoint to resume later.
//
// Deprecated: use NewRunner(cfg).Run(ctx). ExecuteContext remains as a
// thin wrapper and will keep working.
func ExecuteContext(ctx context.Context, cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(ctx)
}

// --- Resilience -------------------------------------------------------------

// RetryPolicy bounds retry sequences for seed navigations and step
// clicks (Config.Retry). The zero value disables retries.
type RetryPolicy = resilience.Policy

// BreakerConfig configures the per-registered-domain circuit breakers
// (Config.Breaker). The zero value disables them.
type BreakerConfig = resilience.BreakerConfig

// DefaultRetryPolicy returns the standard capped-exponential-backoff
// policy: 3 attempts, 500ms base, 8s cap, 2x multiplier, 20% jitter.
// All waiting is virtual-clock time; no wall time is spent.
func DefaultRetryPolicy() RetryPolicy { return resilience.DefaultPolicy() }

// Checkpoint incrementally records completed walks so an interrupted
// crawl can resume (Config.Checkpoint).
type Checkpoint = crawler.Checkpoint

// OpenCheckpoint opens (or creates) a checkpoint file for the given
// seed. Completed walks already on disk are restored instead of
// re-crawled; at Parallelism 1 a resumed dataset is byte-identical to an
// uninterrupted run. A torn final record (a crash mid-write) is dropped
// and recovered from automatically; a corrupt record quarantines the
// file to "<path>.corrupt" and returns an error matching
// errors.Is(err, runio.ErrCorrupt) — see OpenCheckpointTel.
func OpenCheckpoint(path string, seed int64) (*Checkpoint, error) {
	return crawler.OpenCheckpoint(path, seed)
}

// OpenCheckpointTel is OpenCheckpoint with telemetry attached: torn-tail
// recoveries and quarantines are counted on runio.recovered_records and
// runio.quarantined_files.
func OpenCheckpointTel(path string, seed int64, tel *Telemetry) (*Checkpoint, error) {
	return crawler.OpenCheckpointOpts(path, seed, runio.OpenOptions{Tel: tel})
}

// Reanalyze re-runs the post-crawl analysis pipeline (path
// reconstruction, candidate extraction, UID identification, aggregation)
// over an existing run's recorded dataset under a new configuration —
// e.g. a different Parallelism or identification options. The crawl is
// not repeated; results are bit-identical for any Parallelism.
func Reanalyze(cfg Config, r *Run) (*Run, error) {
	return ReanalyzeContext(context.Background(), cfg, r)
}

// ReanalyzeContext is Reanalyze bounded by ctx: cancellation stops
// every analysis stage's shard pool from taking new work and returns
// ctx's error.
func ReanalyzeContext(ctx context.Context, cfg Config, r *Run) (*Run, error) {
	return core.AnalyzeContext(ctx, cfg, r.World, r.Dataset)
}

// WriteReport renders the full evaluation report — every table and figure
// — as text.
func WriteReport(w io.Writer, r *Run) { report.Render(w, r) }

// --- Observability ----------------------------------------------------------

// Telemetry is the pipeline's observability handle: a span tracer stamped
// from the virtual clock plus a registry of counters, gauges and
// histograms. Attach one via Config.Telemetry; a nil handle disables all
// instrumentation at zero cost, and enabling it never changes run
// results.
type Telemetry = telemetry.Telemetry

// Provenance is the self-describing header embedded in saved runs: seed,
// config hash, build identity and (when a run was traced) a telemetry
// summary.
type Provenance = telemetry.Provenance

// TraceSummary aggregates an exported trace (see cmd/crumbtrace).
type TraceSummary = telemetry.TraceSummary

// NewTelemetry returns a telemetry handle with the default span
// capacity. The virtual clock attaches automatically when Execute wires
// the handle to the network.
func NewTelemetry() *Telemetry { return telemetry.New(nil, telemetry.DefaultSpanCapacity) }

// WriteTrace exports a traced run's spans as JSONL for cmd/crumbtrace.
func WriteTrace(path string, t *Telemetry) error {
	return t.Tracer().WriteJSONLFile(path)
}

// RunFormat and RunVersion identify the saved-run document format. The
// versioned header is shared with the checkpoint and analysis-state
// files through the internal runio codec; pre-header files (written
// before this versioning existed) still load.
const (
	RunFormat  = runio.RunFormat
	RunVersion = runio.RunVersion
)

// SavedRun is the on-disk form of a crawl: a versioned format header,
// the configuration (to rebuild the deterministic world), the recorded
// dataset, and a provenance block describing how and by what the file
// was produced.
type SavedRun struct {
	runio.Header
	Config     Config      `json:"config"`
	Provenance *Provenance `json:"provenance,omitempty"`
	Dataset    *Dataset    `json:"dataset"`
}

// EncodeRun writes a run's crawl as a versioned JSON document. When the
// run was executed with telemetry attached, the provenance block
// includes its metrics snapshot.
func EncodeRun(w io.Writer, r *Run) error {
	prov := telemetry.NewProvenance(r.Config.World.Seed, r.Config, r.Config.Telemetry)
	doc := SavedRun{
		Header:     runio.Header{Format: RunFormat, Version: RunVersion, Seed: r.Config.World.Seed},
		Config:     r.Config,
		Provenance: &prov,
		Dataset:    r.Dataset,
	}
	if err := runio.WriteDocument(w, doc); err != nil {
		return fmt.Errorf("crumbcruncher: encode run: %w", err)
	}
	return nil
}

// DecodeRun reads a saved crawl from rd and re-runs the analysis
// pipeline over it. The synthetic world is rebuilt deterministically
// from the saved configuration. Documents from before the versioned
// header are accepted.
func DecodeRun(rd io.Reader) (*Run, error) {
	var saved SavedRun
	want := runio.Header{Format: RunFormat, Version: RunVersion}
	if err := runio.ReadDocument(rd, want, &saved); err != nil {
		return nil, fmt.Errorf("crumbcruncher: decode run: %w", err)
	}
	world := web.BuildWorld(saved.Config.World)
	return core.Analyze(saved.Config, world, saved.Dataset)
}

// SaveRun writes a run's crawl to a JSON file for later re-analysis with
// cmd/crumbreport. See EncodeRun for the document format. The file lands
// via temp-file + atomic rename, so path never holds a half-written run:
// a crash mid-save leaves the previous content (or nothing), not a torn
// document.
func SaveRun(path string, r *Run) error {
	return runio.WriteFileAtomic(path, func(w io.Writer) error {
		return EncodeRun(w, r)
	})
}

// LoadRun reads a saved crawl file and re-runs the analysis pipeline
// over it. See DecodeRun.
func LoadRun(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("crumbcruncher: load run: %w", err)
	}
	defer f.Close()
	return DecodeRun(f)
}

// --- Countermeasures (§7) ---------------------------------------------------

// Debouncer rewrites redirector navigations to their true destinations
// (Brave's defence).
type Debouncer = countermeasures.Debouncer

// NewDebouncer builds a Debouncer from known-smuggler hosts and a
// query-parameter blocklist.
func NewDebouncer(bounceHosts, stripParams []string) *Debouncer {
	return countermeasures.NewDebouncer(bounceHosts, stripParams)
}

// StripSuspectedUIDs removes known and UID-shaped query parameters from a
// URL — the paper's proposed mitigation.
func StripSuspectedUIDs(rawURL string, knownParams map[string]bool) string {
	return countermeasures.StripSuspectedUIDs(rawURL, knownParams)
}

// BreakageSummary tallies how pages degrade when their UID parameters are
// stripped (the §6 experiment).
type BreakageSummary = countermeasures.BreakageSummary
