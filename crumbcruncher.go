// Package crumbcruncher is a from-scratch Go reproduction of
// "Measuring UID Smuggling in the Wild" (Randall et al., IMC 2022): the
// CrumbCruncher measurement system — four synchronized crawlers, a central
// HTTP controller, and a token-analysis pipeline — together with the
// synthetic-web substrate it runs on (virtual network, simulated browser
// with partitioned storage, generated tracker ecosystem).
//
// The Runner is the entry point; a one-call run of the entire study:
//
//	run, err := crumbcruncher.NewRunner(crumbcruncher.DefaultConfig()).Run(context.Background())
//	if err != nil { ... }
//	crumbcruncher.WriteReport(os.Stdout, run)
//
// Options wire in the cross-cutting concerns — WithTelemetry,
// WithRetryPolicy, WithCheckpoint, WithProgress — without touching the
// Config literal. By default execution streams: finished walks flow
// through token extraction and UID classification while the crawl is
// still running (see DESIGN.md §8).
//
// Results carry every table and figure from the paper's evaluation:
// run.Analysis exposes Table 2's summary, Table 3's redirector ranking,
// Figures 4–8, the headline smuggling rate, bounce tracking, the
// fingerprinting experiment and blocklist coverage; run.Cases are the
// confirmed UID smuggling instances with their Table 1 buckets.
package crumbcruncher

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"crumbcruncher/internal/analysis"
	"crumbcruncher/internal/core"
	"crumbcruncher/internal/countermeasures"
	"crumbcruncher/internal/crawler"
	"crumbcruncher/internal/report"
	"crumbcruncher/internal/resilience"
	"crumbcruncher/internal/runio"
	"crumbcruncher/internal/runstore"
	"crumbcruncher/internal/telemetry"
	"crumbcruncher/internal/uid"
	"crumbcruncher/internal/web"
)

// Config configures a full pipeline run. See DefaultConfig and
// SmallConfig for starting points.
type Config = core.Config

// WorldConfig configures the synthetic web (Config.World).
type WorldConfig = web.Config

// Run is a completed pipeline run: the world, the crawl dataset, the
// candidate tokens, the confirmed UID cases and the analysis over them.
type Run = core.Run

// Case is one confirmed UID smuggling instance.
type Case = uid.Case

// IdentifyOptions configures the UID identification stage; the zero value
// is the paper's full method. Its baseline fields (two-crawler subsets,
// lifetime thresholds, Ratcliff/Obershelp slack) reproduce the prior-work
// strategies CrumbCruncher improves on.
type IdentifyOptions = uid.Options

// Analysis exposes every table and figure of the paper's evaluation.
type Analysis = analysis.Analysis

// Dataset is a complete crawl recording.
type Dataset = crawler.Dataset

// DefaultConfig returns the calibrated paper-scale configuration
// (EXPERIMENTS.md records how its measurements compare to the paper's).
func DefaultConfig() Config { return core.DefaultConfig() }

// SmallConfig returns a fast configuration for demos and tests.
func SmallConfig() Config { return core.SmallConfig() }

// Progress is a snapshot of a run's advancement, delivered to the
// WithProgress callback as walks complete and get analysed.
type Progress = core.Progress

// Option customizes a Runner at construction without the caller
// mutating a Config literal.
type Option func(*Config)

// WithTelemetry attaches an observability handle to the run.
func WithTelemetry(t *Telemetry) Option {
	return func(c *Config) { c.Telemetry = t }
}

// WithRetryPolicy sets the crawl's navigation retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Config) { c.Retry = p }
}

// WithCheckpoint attaches a checkpoint so an interrupted run resumes
// without redoing finished walks (or, under the default streaming
// engine, re-analysing them).
func WithCheckpoint(cp *Checkpoint) Option {
	return func(c *Config) { c.Checkpoint = cp }
}

// WithProgress registers a callback invoked with a Progress snapshot as
// walks complete and get analysed. Called from pipeline goroutines
// (serialized); keep it fast.
func WithProgress(fn func(Progress)) Option {
	return func(c *Config) { c.OnProgress = fn }
}

// Runner is the consolidated entry point: a configured pipeline that
// can execute the full study (Run) or re-run the post-crawl analysis
// over an existing dataset (Reanalyze).
type Runner struct {
	cfg Config
}

// NewRunner builds a Runner from a base configuration and options.
// The Config is copied; later mutations of the caller's value do not
// affect the Runner.
func NewRunner(cfg Config, opts ...Option) *Runner {
	for _, o := range opts {
		o(&cfg)
	}
	return &Runner{cfg: cfg}
}

// Config returns the Runner's effective configuration (options applied).
func (r *Runner) Config() Config { return r.cfg }

// Run builds the synthetic web, runs the four-crawler crawl and the
// token pipeline, and returns the analysed run. When ctx is cancelled
// the crawl drains gracefully — in-flight walks finish, unstarted walks
// are recorded as skipped — and ctx's error is returned. Pair with
// WithCheckpoint to resume later.
//
// By default the analysis streams alongside the crawl; set
// Config.BatchAnalysis to run the two phases sequentially instead.
// Both modes produce bit-identical results.
func (r *Runner) Run(ctx context.Context) (*Run, error) {
	return core.ExecuteContext(ctx, r.cfg)
}

// Reanalyze re-runs the post-crawl pipeline over run's recorded dataset
// under the Runner's configuration. The crawl is not repeated.
func (r *Runner) Reanalyze(ctx context.Context, run *Run) (*Run, error) {
	return core.AnalyzeContext(ctx, r.cfg, run.World, run.Dataset)
}

// Execute builds the synthetic web, runs the four-crawler crawl and the
// token pipeline, and returns the analysed run.
//
// Deprecated: use NewRunner(cfg).Run(context.Background()). Execute
// remains as a thin wrapper and will keep working.
func Execute(cfg Config) (*Run, error) { return NewRunner(cfg).Run(context.Background()) }

// ExecuteContext is Execute with cancellation: when ctx is cancelled the
// crawl drains gracefully — in-flight walks finish, unstarted walks are
// recorded as skipped — and ctx's error is returned. Pair with
// Config.Checkpoint to resume later.
//
// Deprecated: use NewRunner(cfg).Run(ctx). ExecuteContext remains as a
// thin wrapper and will keep working.
func ExecuteContext(ctx context.Context, cfg Config) (*Run, error) {
	return NewRunner(cfg).Run(ctx)
}

// --- Resilience -------------------------------------------------------------

// RetryPolicy bounds retry sequences for seed navigations and step
// clicks (Config.Retry). The zero value disables retries.
type RetryPolicy = resilience.Policy

// BreakerConfig configures the per-registered-domain circuit breakers
// (Config.Breaker). The zero value disables them.
type BreakerConfig = resilience.BreakerConfig

// DefaultRetryPolicy returns the standard capped-exponential-backoff
// policy: 3 attempts, 500ms base, 8s cap, 2x multiplier, 20% jitter.
// All waiting is virtual-clock time; no wall time is spent.
func DefaultRetryPolicy() RetryPolicy { return resilience.DefaultPolicy() }

// Checkpoint incrementally records completed walks so an interrupted
// crawl can resume (Config.Checkpoint).
type Checkpoint = crawler.Checkpoint

// OpenCheckpoint opens (or creates) a checkpoint file for the given
// seed. Completed walks already on disk are restored instead of
// re-crawled; at Parallelism 1 a resumed dataset is byte-identical to an
// uninterrupted run. A torn final record (a crash mid-write) is dropped
// and recovered from automatically; a corrupt record quarantines the
// file to "<path>.corrupt" and returns an error matching
// errors.Is(err, runio.ErrCorrupt) — see OpenCheckpointTel.
func OpenCheckpoint(path string, seed int64) (*Checkpoint, error) {
	return crawler.OpenCheckpoint(path, seed)
}

// OpenCheckpointTel is OpenCheckpoint with telemetry attached: torn-tail
// recoveries and quarantines are counted on runio.recovered_records and
// runio.quarantined_files.
func OpenCheckpointTel(path string, seed int64, tel *Telemetry) (*Checkpoint, error) {
	return crawler.OpenCheckpointOpts(path, seed, runio.OpenOptions{Tel: tel})
}

// Reanalyze re-runs the post-crawl analysis pipeline (path
// reconstruction, candidate extraction, UID identification, aggregation)
// over an existing run's recorded dataset under a new configuration —
// e.g. a different Parallelism or identification options. The crawl is
// not repeated; results are bit-identical for any Parallelism.
func Reanalyze(cfg Config, r *Run) (*Run, error) {
	return ReanalyzeContext(context.Background(), cfg, r)
}

// ReanalyzeContext is Reanalyze bounded by ctx: cancellation stops
// every analysis stage's shard pool from taking new work and returns
// ctx's error.
func ReanalyzeContext(ctx context.Context, cfg Config, r *Run) (*Run, error) {
	if r.Dataset == nil {
		// A store-loaded run has no decoded dataset; replay the walks
		// through its analysis source instead.
		return core.AnalyzeSource(ctx, cfg, r.World, r.Analysis.Source())
	}
	return core.AnalyzeContext(ctx, cfg, r.World, r.Dataset)
}

// WriteReport renders the full evaluation report — every table and figure
// — as text.
func WriteReport(w io.Writer, r *Run) { report.Render(w, r) }

// --- Observability ----------------------------------------------------------

// Telemetry is the pipeline's observability handle: a span tracer stamped
// from the virtual clock plus a registry of counters, gauges and
// histograms. Attach one via Config.Telemetry; a nil handle disables all
// instrumentation at zero cost, and enabling it never changes run
// results.
type Telemetry = telemetry.Telemetry

// Provenance is the self-describing header embedded in saved runs: seed,
// config hash, build identity and (when a run was traced) a telemetry
// summary.
type Provenance = telemetry.Provenance

// TraceSummary aggregates an exported trace (see cmd/crumbtrace).
type TraceSummary = telemetry.TraceSummary

// NewTelemetry returns a telemetry handle with the default span
// capacity. The virtual clock attaches automatically when Execute wires
// the handle to the network.
func NewTelemetry() *Telemetry { return telemetry.New(nil, telemetry.DefaultSpanCapacity) }

// WriteTrace exports a traced run's spans as JSONL for cmd/crumbtrace.
func WriteTrace(path string, t *Telemetry) error {
	return t.Tracer().WriteJSONLFile(path)
}

// RunFormat and RunVersion identify the saved-run document format. The
// versioned header is shared with the checkpoint and analysis-state
// files through the internal runio codec; pre-header files (written
// before this versioning existed) still load.
const (
	RunFormat  = runio.RunFormat
	RunVersion = runio.RunVersion
)

// --- Run storage (RunStore API) ----------------------------------------------

// RunStore is one recorded crawl behind a pluggable storage backend:
// append walks as they complete, fetch one walk by index, or stream
// the whole run through a cursor without ever materialising the
// decoded dataset in memory. Two backends ship — a single CRC-framed
// line file and a sharded, gzip-compressed segment directory with a
// sidecar index (see internal/runstore) — and legacy SaveRun documents
// open read-only through the same interface.
type RunStore = runstore.Store

// RunCursor iterates a RunStore's walks in ascending index order; Next
// returns io.EOF after the last walk.
type RunCursor = runstore.Cursor

// RunManifest identifies a stored run: seed, crawler roster, walk
// count, and the raw configuration and provenance documents.
type RunManifest = runstore.Manifest

// StoreBackend names a RunStore storage backend.
type StoreBackend = runstore.Backend

// The available RunStore backends. CreateRunStore picks the segment
// backend for paths ending in ".crumbs" (or a path separator) and the
// line backend otherwise.
const (
	BackendLine    = runstore.BackendLine
	BackendSegment = runstore.BackendSegment
)

// runManifestFor builds the manifest a fresh store for cfg carries.
func runManifestFor(cfg Config) (RunManifest, error) {
	blob, err := json.Marshal(cfg)
	if err != nil {
		return RunManifest{}, fmt.Errorf("crumbcruncher: encode config: %w", err)
	}
	prov := telemetry.NewProvenance(cfg.World.Seed, cfg, cfg.Telemetry)
	pblob, err := json.Marshal(&prov)
	if err != nil {
		return RunManifest{}, fmt.Errorf("crumbcruncher: encode provenance: %w", err)
	}
	return RunManifest{
		Header:     runio.Header{Seed: cfg.World.Seed},
		Crawlers:   crawler.AllCrawlers,
		Config:     blob,
		Provenance: pblob,
	}, nil
}

// CreateRunStore makes a new, empty run store at path for a crawl with
// the given configuration. The backend follows the path: ".crumbs"
// directories get the segment backend, plain files the line backend.
func CreateRunStore(path string, cfg Config) (RunStore, error) {
	m, err := runManifestFor(cfg)
	if err != nil {
		return nil, err
	}
	return runstore.Create(path, runstore.DetectBackend(path), m)
}

// OpenRunStore opens an existing run store, sniffing the backend: a
// directory is a segment store, a file is a line store or a legacy
// single-document run (the deprecated SaveRun format, served
// read-only).
func OpenRunStore(path string) (RunStore, error) { return runstore.Open(path) }

// SaveRunStore writes a completed run's crawl to a new store at path
// and finalizes it. It replaces the deprecated SaveRun; pick the
// segment backend (a ".crumbs" path) for large runs.
func SaveRunStore(path string, r *Run) error {
	st, err := CreateRunStore(path, r.Config)
	if err != nil {
		return err
	}
	var werr error
	if r.Dataset != nil {
		for _, w := range r.Dataset.Walks {
			if werr = st.Append(w); werr != nil {
				break
			}
		}
	} else {
		// A store-analyzed run holds no dataset: replay the walks from
		// the analysis source (i.e. the store it was loaded from).
		werr = r.Analysis.Source().ForEachWalk(st.Append)
	}
	if werr != nil {
		st.Close()
		return werr
	}
	if err := st.Finalize(); err != nil {
		st.Close()
		return err
	}
	return st.Close()
}

// AnalyzeStore re-runs the analysis pipeline over a stored run by
// cursor: walks stream through token extraction, lifetime scanning and
// UID identification in index order, and the figure aggregation
// replays the store on demand, so the decoded dataset is never
// resident all at once. The returned Run has a nil Dataset and keeps
// reading from st lazily — close st only after the Run is no longer
// used. The synthetic world is rebuilt lazily from the stored
// configuration; results are byte-identical to LoadRun on the same
// walks.
func AnalyzeStore(ctx context.Context, st RunStore) (*Run, error) {
	m := st.Manifest()
	var cfg Config
	if len(m.Config) > 0 {
		if err := json.Unmarshal(m.Config, &cfg); err != nil {
			return nil, fmt.Errorf("crumbcruncher: stored config: %w", err)
		}
	}
	if cfg.World.Seed == 0 {
		cfg.World.Seed = m.Seed
	}
	// Lazy world: figures only consult the world's ground truth and
	// lists, which are byte-identical in both modes, and a million-site
	// stored run must not pay an eager rebuild just to render a report.
	wcfg := cfg.World
	wcfg.Lazy = true
	world := web.BuildWorld(wcfg)
	return core.AnalyzeStore(ctx, cfg, world, st)
}

// LoadRunStore opens the store at path and re-runs the analysis over
// it by cursor. The returned Run reads walk records from the store
// lazily for the figures that need them; the store is closed when the
// process exits (use OpenRunStore + AnalyzeStore to manage the handle
// explicitly).
func LoadRunStore(path string) (*Run, error) {
	st, err := OpenRunStore(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeStore(context.Background(), st)
}

// --- Deprecated single-document run APIs -------------------------------------

// SavedRun is the single-document on-disk form of a crawl: a versioned
// format header, the configuration (to rebuild the deterministic
// world), the recorded dataset, and a provenance block describing how
// and by what the file was produced.
//
// Deprecated: the document format requires decoding the entire run to
// read any of it. New code records through the RunStore API
// (CreateRunStore / SaveRunStore); existing documents keep loading via
// OpenRunStore and LoadRun.
type SavedRun struct {
	runio.Header
	Config     Config      `json:"config"`
	Provenance *Provenance `json:"provenance,omitempty"`
	Dataset    *Dataset    `json:"dataset"`
}

// EncodeRun writes a run's crawl as a versioned JSON document. When the
// run was executed with telemetry attached, the provenance block
// includes its metrics snapshot.
//
// Deprecated: use SaveRunStore, which writes the streamable RunStore
// formats. EncodeRun remains for producing the legacy single-document
// form and will keep working.
func EncodeRun(w io.Writer, r *Run) error {
	prov := telemetry.NewProvenance(r.Config.World.Seed, r.Config, r.Config.Telemetry)
	doc := SavedRun{
		Header:     runio.Header{Format: RunFormat, Version: RunVersion, Seed: r.Config.World.Seed},
		Config:     r.Config,
		Provenance: &prov,
		Dataset:    r.Dataset,
	}
	if err := runio.WriteDocument(w, doc); err != nil {
		return fmt.Errorf("crumbcruncher: encode run: %w", err)
	}
	return nil
}

// DecodeRun reads a saved crawl from rd and re-runs the analysis
// pipeline over it. The synthetic world is rebuilt deterministically
// from the saved configuration. Documents from before the versioned
// header are accepted.
//
// Deprecated: use OpenRunStore + AnalyzeStore (or LoadRunStore), which
// stream the run by cursor instead of decoding it whole. DecodeRun
// remains for in-memory readers of the legacy document form.
func DecodeRun(rd io.Reader) (*Run, error) {
	var saved SavedRun
	want := runio.Header{Format: RunFormat, Version: RunVersion}
	if err := runio.ReadDocument(rd, want, &saved); err != nil {
		return nil, fmt.Errorf("crumbcruncher: decode run: %w", err)
	}
	world := web.BuildWorld(saved.Config.World)
	return core.Analyze(saved.Config, world, saved.Dataset)
}

// SaveRun writes a run's crawl to a file for later re-analysis with
// cmd/crumbreport. The file lands atomically — a crash mid-save leaves
// the previous content (or nothing), never a torn run.
//
// Deprecated: use SaveRunStore. SaveRun is a thin shim over it and now
// writes the line-backend RunStore format (readable by LoadRun,
// OpenRunStore and every current tool, but not by pre-RunStore
// builds); writers that need the legacy single-document form call
// EncodeRun directly.
func SaveRun(path string, r *Run) error {
	return SaveRunStore(path, r)
}

// LoadRun reads a saved crawl and re-runs the analysis pipeline over
// it. Every stored form loads: RunStore line files and segment
// directories, and legacy single-document runs.
//
// Deprecated: use LoadRunStore (or OpenRunStore + AnalyzeStore to
// manage the store handle). LoadRun is a thin shim over LoadRunStore.
func LoadRun(path string) (*Run, error) {
	return LoadRunStore(path)
}

// --- Countermeasures (§7) ---------------------------------------------------

// Debouncer rewrites redirector navigations to their true destinations
// (Brave's defence).
type Debouncer = countermeasures.Debouncer

// NewDebouncer builds a Debouncer from known-smuggler hosts and a
// query-parameter blocklist.
func NewDebouncer(bounceHosts, stripParams []string) *Debouncer {
	return countermeasures.NewDebouncer(bounceHosts, stripParams)
}

// StripSuspectedUIDs removes known and UID-shaped query parameters from a
// URL — the paper's proposed mitigation.
func StripSuspectedUIDs(rawURL string, knownParams map[string]bool) string {
	return countermeasures.StripSuspectedUIDs(rawURL, knownParams)
}

// BreakageSummary tallies how pages degrade when their UID parameters are
// stripped (the §6 experiment).
type BreakageSummary = countermeasures.BreakageSummary
